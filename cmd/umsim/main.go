// Command umsim runs one end-to-end simulation from flags and prints a
// result summary — the interactive front door to the simulator.
//
// Examples:
//
//	umsim -arch umanycore -app CPost -rps 15000
//	umsim -arch serverclass -cores 128 -mix -rps 10000 -duration 500ms
//	umsim -arch scaleout -app synthetic:bimodal:10:3 -rps 50000 -bursty
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"umanycore"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

func main() {
	arch := flag.String("arch", "umanycore", "architecture: umanycore | scaleout | serverclass")
	cores := flag.Int("cores", 40, "ServerClass core count (40 iso-power, 128 iso-area)")
	appName := flag.String("app", "CPost", "application (Text SGraph User PstStr UsrMnt HomeT CPost UrlShort) or synthetic:<dist>:<mean_us>:<blocks>")
	mix := flag.Bool("mix", false, "drive the full SocialNetwork request mix instead of one app")
	rps := flag.Float64("rps", 15000, "offered load (requests/second)")
	duration := flag.Duration("duration", 400*time.Millisecond, "arrival window (simulated)")
	warmup := flag.Duration("warmup", 80*time.Millisecond, "measurement warmup (simulated)")
	bursty := flag.Bool("bursty", false, "use bursty (MMPP) arrivals instead of Poisson")
	seed := flag.Int64("seed", 1, "simulation seed")
	queues := flag.Int("queues", 0, "override scheduling-domain count (0 = preset)")
	csCycles := flag.Int("cs", -1, "override context-switch cycles (-1 = preset)")
	noContention := flag.Bool("no-icn-contention", false, "disable ICN contention (Fig 7 baseline)")
	replicates := flag.Int("replicates", 1, "independent replicates with derived seeds (run in parallel; reports the p99 spread)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON of replicate 0 to FILE")
	exemplarsOut := flag.String("exemplars", "", "write replicate 0's K slowest request trees as JSON to FILE (- = stdout)")
	exemplarsK := flag.Int("exemplars-k", 3, "how many tail exemplars to select (needs -exemplars)")
	metricsOut := flag.String("metrics", "", "write replicate 0's metrics snapshot as JSON to FILE (- = stdout)")
	sample := flag.Duration("sample", 0, "streaming-telemetry sampling interval for replicate 0 (simulated; 0 = off unless another telemetry flag enables it)")
	seriesOut := flag.String("series", "", "write replicate 0's telemetry time series as CSV to FILE (- = stdout)")
	dash := flag.Bool("dash", false, "print a terminal sparkline dashboard of the telemetry series")
	sloP99 := flag.Float64("slo-p99", 0, "enable the SLO watchdog against this P99 objective [us] and print its alerts")
	serve := flag.String("serve", "", "serve live /metrics, /healthz, /progress and pprof on this address during the run (e.g. :9090)")
	flag.Parse()

	switch {
	case *rps <= 0:
		fatal(fmt.Errorf("-rps %v is out of range: want a positive offered load", *rps))
	case *duration <= 0 || *warmup < 0:
		fatal(fmt.Errorf("bad run window: -duration must be positive and -warmup non-negative (got %v / %v)", *duration, *warmup))
	case *replicates < 1:
		fatal(fmt.Errorf("-replicates %d is out of range: want at least 1 replicate", *replicates))
	case *exemplarsK < 1:
		fatal(fmt.Errorf("-exemplars-k %d is out of range: want at least 1 exemplar", *exemplarsK))
	case *sloP99 < 0:
		fatal(fmt.Errorf("-slo-p99 %v is out of range: want a non-negative P99 objective in microseconds", *sloP99))
	}

	cfg, err := buildConfig(*arch, *cores)
	if err != nil {
		fatal(err)
	}
	if *queues > 0 {
		cfg.Domains = *queues
	}
	if *csCycles >= 0 {
		cfg.Policy.CSCycles = *csCycles
	}
	if *noContention {
		cfg.ICNContention = false
	}

	app, err := buildApp(*appName)
	if err != nil {
		fatal(err)
	}

	rc := umanycore.RunConfig{
		App:      app,
		RPS:      *rps,
		Duration: sim.Time(duration.Nanoseconds()) * umanycore.Nanosecond,
		Warmup:   sim.Time(warmup.Nanoseconds()) * umanycore.Nanosecond,
		Seed:     *seed,
	}
	if *mix {
		rc.Mix = umanycore.SocialNetworkMix()
	}
	if *bursty {
		rc.Arrivals = machine.BurstyArrivals
	}

	// Replicate 0 keeps the user's seed; extra replicates derive theirs, so
	// -replicates 1 output matches a plain run bit for bit.
	seeds := make([]int64, *replicates)
	seeds[0] = *seed
	for i := 1; i < *replicates; i++ {
		seeds[i] = sweep.Seed(*seed, fmt.Sprintf("replicate/%d", i))
	}
	// Observability is recorded for replicate 0 only — the seed the user
	// asked for; extra replicates stay on the zero-overhead path.
	obsOn := *traceOut != "" || *metricsOut != "" || *exemplarsOut != ""
	teleOn := *sample > 0 || *seriesOut != "" || *dash || *sloP99 > 0
	var teleOpts *umanycore.TelemetryOptions
	if teleOn {
		if *sloP99 > 0 {
			teleOpts = umanycore.DefaultTelemetry(*sloP99)
		} else {
			teleOpts = &umanycore.TelemetryOptions{}
		}
		if *sample > 0 {
			teleOpts.Interval = sim.Time(sample.Nanoseconds()) * umanycore.Nanosecond
		}
	}
	if *serve != "" {
		addr, err := telemetry.ParseServeAddr(*serve)
		if err != nil {
			fatal(err)
		}
		srv, err := telemetry.Serve(addr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "umsim: serving /metrics /healthz /progress /series.csv /debug/pprof on %s\n", srv.Addr)
	}
	start := time.Now()
	results := sweep.Map(0, seeds, func(i int, s int64) *umanycore.Result {
		rrc := rc
		rrc.Seed = s
		if obsOn && i == 0 {
			rrc.Obs = &umanycore.ObsOptions{
				Trace:   *traceOut != "" || *exemplarsOut != "",
				Metrics: *metricsOut != "",
			}
		}
		if teleOn && i == 0 {
			rrc.Telemetry = teleOpts
		}
		return umanycore.Run(cfg, rrc)
	})
	elapsed := time.Since(start)
	res := results[0]
	if res.Telemetry != nil {
		telemetry.Publish(res.Telemetry)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, res.Obs.Spans, app); err != nil {
			fatal(err)
		}
	}
	if *exemplarsOut != "" {
		if err := writeExemplars(*exemplarsOut, res.Obs.Spans, *exemplarsK); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res); err != nil {
			fatal(err)
		}
	}
	if *seriesOut != "" {
		if err := writeSeries(*seriesOut, res.Telemetry); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("machine      : %s (%d cores, %d domains, %s)\n", res.Machine, cfg.Cores, cfg.Domains, cfg.Topo)
	fmt.Printf("workload     : %s @ %.0f RPS%s\n", res.App, res.RPS, mixTag(*mix))
	fmt.Printf("requests     : submitted=%d completed=%d rejected=%d unfinished=%d\n",
		res.Submitted, res.Completed, res.Rejected, res.Unfinished)
	fmt.Printf("latency [us] : mean=%.1f p50=%.1f p99=%.1f max=%.1f (p99/mean %.2f)\n",
		res.Latency.Mean, res.Latency.Median, res.Latency.P99, res.Latency.Max, res.TailToAvg)
	fmt.Printf("machine      : core-util=%.3f mean-hops=%.2f max-link-util=%.3f\n",
		res.Utilization, res.MeanHops, res.MaxLinkUtil)
	fmt.Printf("simulator    : %d events in %v (%.1fM events/s)\n",
		res.Events, elapsed.Round(time.Millisecond), float64(res.Events)/elapsed.Seconds()/1e6)
	if len(res.PerRoot) > 1 {
		fmt.Println("per request type [us]:")
		catalog := app.Catalog
		for root := 0; root < len(catalog.Services); root++ {
			sum, ok := res.PerRoot[root]
			if !ok {
				continue
			}
			fmt.Printf("  %-9s n=%-7d mean=%9.1f p99=%10.1f\n",
				catalog.Service(root).Name, sum.N, sum.Mean, sum.P99)
		}
	}
	if len(results) > 1 {
		lo, hi, sum := results[0].Latency.P99, results[0].Latency.P99, 0.0
		for _, r := range results {
			p := r.Latency.P99
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
			sum += p
		}
		fmt.Printf("replicates   : n=%d p99 mean=%.1f min=%.1f max=%.1f [us]\n",
			len(results), sum/float64(len(results)), lo, hi)
	}
	if res.Telemetry != nil {
		if *dash {
			fmt.Println()
			res.Telemetry.Dashboard(os.Stdout, 48)
		} else if *sloP99 > 0 {
			if len(res.Telemetry.Alerts) == 0 {
				fmt.Printf("slo watchdog : no alerts (P99 objective %.0fus)\n", *sloP99)
			} else {
				fmt.Printf("slo watchdog : %d transitions (P99 objective %.0fus)\n", len(res.Telemetry.Alerts), *sloP99)
				for _, a := range res.Telemetry.Alerts {
					fmt.Printf("  %s\n", a.String())
				}
			}
		}
	}
}

// writeSeries dumps the telemetry time series as CSV.
func writeSeries(path string, run *umanycore.TelemetryRun) error {
	if run == nil {
		return fmt.Errorf("-series needs telemetry (it enables the sampler; did the run record nothing?)")
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return run.WriteCSV(w)
}

func buildConfig(arch string, cores int) (umanycore.Config, error) {
	switch strings.ToLower(arch) {
	case "umanycore", "umc":
		return umanycore.UManycore(), nil
	case "scaleout", "so":
		return umanycore.ScaleOut(), nil
	case "serverclass", "sc":
		return umanycore.ServerClass(cores), nil
	default:
		return umanycore.Config{}, fmt.Errorf("unknown architecture %q", arch)
	}
}

func buildApp(name string) (*umanycore.App, error) {
	if strings.HasPrefix(name, "synthetic:") {
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic app format: synthetic:<dist>:<mean_us>:<blocks>")
		}
		mean, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad mean %q: %v", parts[2], err)
		}
		blocks, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("bad block count %q: %v", parts[3], err)
		}
		return workload.SyntheticApp(parts[1], mean, blocks)
	}
	for _, a := range umanycore.SocialNetworkApps() {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown application %q (want one of %v)", name, workload.AppNames)
}

func mixTag(mix bool) string {
	if mix {
		return " (mixed SocialNetwork stream)"
	}
	return ""
}

// writeTrace dumps the recorded spans as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing.
func writeTrace(path string, spans []umanycore.Span, app *umanycore.App) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	catalog := app.Catalog
	name := func(svc int16) string {
		if int(svc) >= 0 && int(svc) < len(catalog.Services) {
			return catalog.Service(int(svc)).Name
		}
		return strconv.Itoa(int(svc))
	}
	if err := obs.WriteChromeTrace(f, spans, name); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExemplars dumps the K slowest request trees as deterministic JSON —
// the virtual-time-selected tail exemplars (obs.Exemplars).
func writeExemplars(path string, spans []umanycore.Span, k int) error {
	xs := obs.Exemplars(spans, k)
	if path == "-" {
		if err := obs.WriteExemplarsJSON(os.Stdout, xs); err != nil {
			return err
		}
		_, err := os.Stdout.WriteString("\n")
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteExemplarsJSON(f, xs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics emits the run's metrics snapshot plus the latency summary as
// one JSON object with stable key order (stats.JSONObject — the encoder
// shared with umprof and umbench).
func writeMetrics(path string, res *umanycore.Result) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	lat, err := res.Latency.MarshalJSON()
	if err != nil {
		return err
	}
	var o stats.JSONObject
	o.Str("machine", res.Machine).
		Str("app", res.App).
		Float("rps", res.RPS).
		Raw("latency", lat).
		Obj("metrics", func(m *stats.JSONObject) {
			for _, mt := range res.Obs.Metrics {
				m.Float(mt.Name, mt.Value)
			}
		})
	if _, err := w.Write(o.Bytes()); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "umsim:", err)
	os.Exit(2)
}
