package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("UMSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UMSIM_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		return out.String(), errb.String(), ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), 0
}

// TestMetricsGolden pins the -metrics JSON snapshot byte for byte. The
// stdout report includes wall-clock timings, so the file output is the
// stable surface to golden-test.
func TestMetricsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	f := t.TempDir() + "/metrics.json"
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms", "-metrics", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "latency [us] :") {
		t.Fatalf("summary missing from stdout: %q", stdout)
	}
	b, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"machine":"uManycore","app":"Text","rps":8000,"latency":{"n":219,"mean":516.2658369452055,"p50":507.559109,"p99":781.564295,"max":797.057152},"metrics":{"icn.hops.mean":4,"icn.messages":1794,"machine.admit.nicbuf":0,"machine.admit.reject":0,"machine.admit.rq":1196,"machine.admit.swq":0,"machine.completed":299,"machine.core.util.max":0.035908104525,"machine.core.util.mean":0.0034214814961669926,"machine.core.util.min":0,"machine.invocations":1196,"machine.queue.depth.max":1,"machine.queue.depth.mean":0,"machine.rejected":0,"machine.submitted":299,"sim.events":10466,"sim.heap.peak":18}}` + "\n"
	if string(b) != want {
		t.Fatalf("metrics snapshot drifted:\ngot:  %swant: %s", b, want)
	}
}

// TestWatchdogOutput drives the SLO watchdog from the command line: a P99
// objective far below the delivered latency must print firing alerts.
func TestWatchdogOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms", "-slo-p99", "50")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "slo watchdog :") {
		t.Fatalf("no watchdog section: %q", stdout)
	}
	if !strings.Contains(stdout, "slo.p99") {
		t.Fatalf("slo.p99 did not fire against a 50us objective: %q", stdout)
	}
}

// TestBadFlagBoundsExit pins the parse-time flag validation: out-of-range
// values exit 2 before any simulation starts.
func TestBadFlagBoundsExit(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-rps", "-5"}, "-rps -5 is out of range"},
		{[]string{"-rps", "0"}, "-rps 0 is out of range"},
		{[]string{"-duration", "-10ms"}, "bad run window"},
		{[]string{"-warmup", "-1ms"}, "bad run window"},
		{[]string{"-replicates", "0"}, "-replicates 0 is out of range"},
		{[]string{"-replicates", "-3"}, "-replicates -3 is out of range"},
		{[]string{"-exemplars-k", "0"}, "-exemplars-k 0 is out of range"},
		{[]string{"-slo-p99", "-100"}, "-slo-p99 -100 is out of range"},
	} {
		_, stderr, code := runMain(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", tc.args, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, stderr, tc.want)
		}
	}
}

func TestBadAppExits(t *testing.T) {
	_, stderr, code := runMain(t, "-app", "NoSuchApp")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown application") {
		t.Fatalf("stderr %q", stderr)
	}
}
