// Command umprof runs one traced simulation and prints the paper-style
// tail-blame breakdown: for the slowest fraction of requests, where their
// latency went — queueing, scheduling, context switches, memory stalls, RPC
// processing, service compute, storage, and network transfer — attributed by
// exact critical-path extraction through each request's span tree, so the
// per-stage sums reconcile with the measured end-to-end latencies to the
// picosecond.
//
// Examples:
//
//	umprof -arch serverclass -cores 40 -app CPost -rps 15000
//	umprof -arch umanycore -mix -rps 20000 -top 5
//	umprof -app HomeT -rps 12000 -trace out.json -spans spans.csv
//	umprof -servers 10 -rps 100000 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"umanycore"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func main() {
	arch := flag.String("arch", "umanycore", "architecture: umanycore | scaleout | serverclass")
	cores := flag.Int("cores", 40, "ServerClass core count")
	appName := flag.String("app", "CPost", "application name or synthetic:<dist>:<mean_us>:<blocks>")
	mix := flag.Bool("mix", false, "drive the full SocialNetwork request mix")
	rps := flag.Float64("rps", 15000, "offered load (requests/second)")
	duration := flag.Duration("duration", 400*time.Millisecond, "arrival window (simulated)")
	warmup := flag.Duration("warmup", 80*time.Millisecond, "measurement warmup (simulated)")
	seed := flag.Int64("seed", 1, "simulation seed")
	servers := flag.Int("servers", 0, "run a fleet of N servers (0 = single machine); traces merge across servers")
	top := flag.Float64("top", 1, "tail fraction to analyze, in percent (1 = slowest 1%)")
	traceOut := flag.String("trace", "", "also write a Chrome/Perfetto trace-event JSON to FILE")
	spansOut := flag.String("spans", "", "also write every span as CSV to FILE")
	metricsOut := flag.String("metrics", "", "also write the metrics snapshot as CSV to FILE")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of a table")
	flag.Parse()

	cfg, err := buildConfig(*arch, *cores)
	if err != nil {
		fatal(err)
	}
	app, err := buildApp(*appName)
	if err != nil {
		fatal(err)
	}
	rc := umanycore.RunConfig{
		App:      app,
		RPS:      *rps,
		Duration: sim.Time(duration.Nanoseconds()) * umanycore.Nanosecond,
		Warmup:   sim.Time(warmup.Nanoseconds()) * umanycore.Nanosecond,
		Seed:     *seed,
		Obs:      umanycore.DefaultObs(),
	}
	if *mix {
		rc.Mix = umanycore.SocialNetworkMix()
	}

	var orun *umanycore.ObsRun
	var latency umanycore.Summary
	var label string
	if *servers > 0 {
		fc := umanycore.DefaultFleet(cfg)
		fc.Servers = *servers
		fres := umanycore.RunFleet(fc, app, *rps, rc, *seed)
		orun, latency = fres.Obs, fres.Latency
		label = fmt.Sprintf("%s x%d servers", fres.Machine, *servers)
	} else {
		res := umanycore.Run(cfg, rc)
		orun, latency = res.Obs, res.Latency
		label = res.Machine
	}

	rep := umanycore.AnalyzeTail(orun.Spans, *top/100)

	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			catalog := app.Catalog
			return obs.WriteChromeTrace(f, orun.Spans, func(svc int16) string {
				if int(svc) >= 0 && int(svc) < len(catalog.Services) {
					return catalog.Service(int(svc)).Name
				}
				return strconv.Itoa(int(svc))
			})
		}); err != nil {
			fatal(err)
		}
	}
	if *spansOut != "" {
		if err := writeFile(*spansOut, func(f *os.File) error {
			return obs.WriteSpansCSV(f, orun.Spans)
		}); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f *os.File) error {
			return obs.WriteMetricsCSV(f, orun.Metrics)
		}); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		printJSON(label, app.Name, *rps, latency, rep)
		return
	}
	fmt.Printf("machine : %s\n", label)
	fmt.Printf("workload: %s @ %.0f RPS%s\n", app.Name, *rps, mixTag(*mix))
	fmt.Printf("latency : %s [us]\n\n", latency)
	rep.WriteTable(os.Stdout)
	// The traced p99 comes from the span trees alone; the measured p99 from
	// the latency sample. Agreement is the layer's end-to-end cross-check.
	fmt.Printf("\nreconcile: traced p99 %.1fus vs measured p99 %.1fus (diff %+.2f%%)\n",
		rep.P99.Micros(), latency.P99, pctDiff(rep.P99.Micros(), latency.P99))
}

// printJSON emits the report as one stable-order JSON object; the latency
// field uses stats.Summary's fixed-order marshaling shared with umsim/umbench.
func printJSON(machineName, appName string, rps float64, latency umanycore.Summary, rep *umanycore.BlameReport) {
	lat, err := latency.MarshalJSON()
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "{\"machine\":%q,\"app\":%q,\"rps\":%s,\"latency\":%s,",
		machineName, appName, strconv.FormatFloat(rps, 'g', -1, 64), lat)
	fmt.Fprintf(&b, "\"tail\":{\"top_frac\":%s,\"traced\":%d,\"analyzed\":%d,\"cutoff_us\":%.3f,\"traced_p99_us\":%.3f,\"by_stage_us\":{",
		strconv.FormatFloat(rep.TopFrac, 'g', -1, 64), rep.Total, len(rep.Requests),
		rep.Cutoff.Micros(), rep.P99.Micros())
	first := true
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		d := rep.ByStage[st]
		if d == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%.3f", st.String(), d.Micros())
	}
	fmt.Fprintf(&b, "},\"residual_ps\":%d}}\n", int64(rep.Residual()))
	os.Stdout.WriteString(b.String())
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func pctDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

func buildConfig(arch string, cores int) (umanycore.Config, error) {
	switch strings.ToLower(arch) {
	case "umanycore", "umc":
		return umanycore.UManycore(), nil
	case "scaleout", "so":
		return umanycore.ScaleOut(), nil
	case "serverclass", "sc":
		return umanycore.ServerClass(cores), nil
	default:
		return umanycore.Config{}, fmt.Errorf("unknown architecture %q", arch)
	}
}

func buildApp(name string) (*umanycore.App, error) {
	if strings.HasPrefix(name, "synthetic:") {
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic app format: synthetic:<dist>:<mean_us>:<blocks>")
		}
		mean, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad mean %q: %v", parts[2], err)
		}
		blocks, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("bad block count %q: %v", parts[3], err)
		}
		return workload.SyntheticApp(parts[1], mean, blocks)
	}
	for _, a := range umanycore.SocialNetworkApps() {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	for _, a := range umanycore.MuSuiteApps() {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown application %q (want one of %v)", name, workload.AppNames)
}

func mixTag(mix bool) string {
	if mix {
		return " (mixed SocialNetwork stream)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "umprof:", err)
	os.Exit(2)
}
