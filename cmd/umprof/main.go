// Command umprof runs one traced simulation and prints the paper-style
// tail-blame breakdown: for the slowest fraction of requests, where their
// latency went — queueing, scheduling, context switches, memory stalls, RPC
// processing, service compute, storage, and network transfer — attributed by
// exact critical-path extraction through each request's span tree, so the
// per-stage sums reconcile with the measured end-to-end latencies to the
// picosecond.
//
// With -trace FILE the synthetic arrival process is replaced by an external
// trace replay (see internal/svcgraph): each CSV record becomes one request,
// typed by its root service and compute-scaled by its recorded demand, so
// `umtrace -csv > t.csv && umprof -trace t.csv` closes the loop from trace
// generation to tail blame.
//
// Examples:
//
//	umprof -arch serverclass -cores 40 -app CPost -rps 15000
//	umprof -arch umanycore -mix -rps 20000 -top 5
//	umprof -app HomeT -rps 12000 -chrome-trace out.json -spans spans.csv
//	umprof -servers 10 -rps 100000 -json
//	umtrace -requests 2000 -csv > t.csv && umprof -trace t.csv -servers 4 -rps 40000
//	umprof -whatif -app HomeT -rps 12000
//	umprof -whatif -whatif-stages rpc-proc,storage -whatif-factors 0.5,0 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"umanycore"
	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/svcgraph"
	"umanycore/internal/telemetry"
	"umanycore/internal/whatif"
	"umanycore/internal/workload"
)

func main() {
	arch := flag.String("arch", "umanycore", "architecture: umanycore | scaleout | serverclass")
	cores := flag.Int("cores", 40, "ServerClass core count")
	appName := flag.String("app", "CPost", "application name or synthetic:<dist>:<mean_us>:<blocks>")
	mix := flag.Bool("mix", false, "drive the full SocialNetwork request mix")
	rps := flag.Float64("rps", 15000, "offered load (requests/second)")
	duration := flag.Duration("duration", 400*time.Millisecond, "arrival window (simulated)")
	warmup := flag.Duration("warmup", 80*time.Millisecond, "measurement warmup (simulated)")
	seed := flag.Int64("seed", 1, "simulation seed")
	servers := flag.Int("servers", 0, "run a coupled fleet of N servers (0 = single machine); traces merge across servers")
	lb := flag.String("lb", "", "fleet load-balancer policy: rr | rand | least | p2c (default rr; needs -servers)")
	skew := flag.String("skew", "", "comma-separated per-server slowdown factors, e.g. 1,1,2 (needs -servers)")
	shardWorkers := flag.Int("shard-workers", 0, "PDES shard workers for the coupled fleet (0/1: sequential, -1: single-engine reference); results are identical for any value (needs -servers)")
	top := flag.Float64("top", 1, "tail fraction to analyze, in percent (1 = slowest 1%)")
	traceIn := flag.String("trace", "", "replay an external trace CSV (umtrace -csv wire format) instead of synthetic arrivals; -rps rescales the trace to that mean rate when given explicitly")
	traceOut := flag.String("chrome-trace", "", "also write a Chrome/Perfetto trace-event JSON to FILE")
	spansOut := flag.String("spans", "", "also write every span as CSV to FILE")
	metricsOut := flag.String("metrics", "", "also write the metrics snapshot as CSV to FILE")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of a table")
	fabric := flag.Bool("fabric", false, "also report the PDES fabric's self-observability (needs -servers and 2+ servers)")
	exemplarsOut := flag.String("exemplars", "", "write the K slowest stitched request trees as JSON to FILE (- = stdout)")
	exemplarsTrace := flag.String("exemplars-trace", "", "write the exemplar trees as Chrome/Perfetto trace-event JSON to FILE")
	exemplarsK := flag.Int("exemplars-k", 3, "how many tail exemplars to select")
	sample := flag.Duration("sample", 0, "streaming-telemetry sampling interval (simulated; 0 = off unless -series set)")
	seriesOut := flag.String("series", "", "write the telemetry time series as CSV to FILE (- = stdout)")
	serve := flag.String("serve", "", "serve live /metrics, /healthz, /progress and pprof on this address during the run (e.g. :9090)")
	whatIf := flag.Bool("whatif", false, "causal profiling: run the paired-seed what-if grid of virtual stage speedups instead of one report")
	whatIfStages := flag.String("whatif-stages", "", "comma-separated stages to virtually accelerate (default: sched,ctxswitch,mem-stall,rpc-proc,storage,net)")
	whatIfFactors := flag.String("whatif-factors", "", "comma-separated stage cost factors in [0,1], 0 = stage eliminated (default: 0.9,0.75,0.5,0)")
	retries := flag.Int("retries", 0, "retry a rejected root up to N times with capped exponential backoff (needs -servers)")
	retryBase := flag.Duration("retry-base", 100*time.Microsecond, "first retry backoff (doubles per attempt; needs -retries)")
	retryCap := flag.Duration("retry-cap", 800*time.Microsecond, "backoff ceiling (needs -retries)")
	retryJitter := flag.Float64("retry-jitter", 0.5, "subtract up to this fraction of each backoff, uniformly at random (needs -retries)")
	hedge := flag.Duration("hedge", 0, "duplicate a root to a second server after this deadline, first response wins (0 = off; needs -servers)")
	shedProb := flag.Float64("shed-prob", 0, "reject probability at the dispatcher while the slo.burn watchdog fires (0 = off; needs -servers and -shed-slo)")
	shedSLO := flag.Float64("shed-slo", 0, "per-request P99 objective in microseconds for the shedding watchdog (needs -shed-prob)")
	scaleMin := flag.Int("scale-min", 0, "autoscale: start with N active servers and grow on windowed-p99 pressure (0 = whole fleet active; needs -servers and -scale-p99)")
	scaleP99 := flag.Float64("scale-p99", 0, "autoscaler P99 target in microseconds (needs -scale-min)")
	scaleLag := flag.Duration("scale-lag", 0, "cold-start lag before a scaled-up server becomes routable (needs -scale-min)")
	flag.Parse()

	if *top <= 0 || *top > 100 {
		fatal(fmt.Errorf("-top %v is out of range: want a tail percentage in (0, 100]", *top))
	}
	ctl, err := buildControl(controlCLI{
		retries: *retries, retryBase: *retryBase, retryCap: *retryCap, retryJitter: *retryJitter,
		hedge: *hedge, shedProb: *shedProb, shedSLO: *shedSLO,
		scaleMin: *scaleMin, scaleP99: *scaleP99, scaleLag: *scaleLag,
	})
	if err != nil {
		fatal(err)
	}
	if ctl != nil && *servers < 2 {
		fatal(fmt.Errorf("control flags (-retries/-hedge/-shed-prob/-scale-min) need a coupled fleet (-servers 2 or more)"))
	}
	if ctl != nil && *whatIf {
		fatal(fmt.Errorf("control flags are not supported with -whatif"))
	}
	if *exemplarsK < 1 {
		fatal(fmt.Errorf("-exemplars-k %d is out of range: want at least 1 exemplar", *exemplarsK))
	}
	cfg, err := buildConfig(*arch, *cores)
	if err != nil {
		fatal(err)
	}
	app, err := buildApp(*appName)
	if err != nil {
		fatal(err)
	}
	var replay *svcgraph.Replay
	if *traceIn != "" {
		if *whatIf {
			fatal(fmt.Errorf("-trace is not supported with -whatif (the what-if grid re-simulates synthetic arrivals)"))
		}
		if ctl != nil {
			fatal(fmt.Errorf("-trace is not supported with control flags (arrivals are the trace's, not the controller's)"))
		}
		// -rps only rescales the replay when given explicitly; the default
		// otherwise replays a 5-column trace verbatim at its recorded times.
		rpsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "rps" {
				rpsSet = true
			}
		})
		replayRPS := 0.0
		if rpsSet {
			replayRPS = *rps
		}
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		tr, err := svcgraph.ParseTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if replay, err = tr.Bind(app, replayRPS); err != nil {
			fatal(err)
		}
	}
	if *whatIf {
		runWhatIf(cfg, app, whatIfCLI{
			stages: *whatIfStages, factors: *whatIfFactors,
			mix: *mix, rps: *rps, duration: *duration, warmup: *warmup,
			seed: *seed, servers: *servers, lb: *lb, skew: *skew,
			shardWorkers: *shardWorkers, top: *top, json: *jsonOut,
		})
		return
	}
	rc := umanycore.RunConfig{
		App:      app,
		RPS:      *rps,
		Duration: sim.Time(duration.Nanoseconds()) * umanycore.Nanosecond,
		Warmup:   sim.Time(warmup.Nanoseconds()) * umanycore.Nanosecond,
		Seed:     *seed,
		Obs:      umanycore.DefaultObs(),
		Replay:   replay,
	}
	if *mix {
		rc.Mix = umanycore.SocialNetworkMix()
	}
	if *sample > 0 || *seriesOut != "" {
		topts := &umanycore.TelemetryOptions{}
		if *sample > 0 {
			topts.Interval = sim.Time(sample.Nanoseconds()) * umanycore.Nanosecond
		}
		rc.Telemetry = topts
	}
	if *serve != "" {
		addr, err := telemetry.ParseServeAddr(*serve)
		if err != nil {
			fatal(err)
		}
		srv, err := telemetry.Serve(addr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "umprof: serving /metrics /healthz /progress /series.csv /debug/pprof on %s\n", srv.Addr)
	}

	var orun *umanycore.ObsRun
	var trun *umanycore.TelemetryRun
	var latency umanycore.Summary
	var label string
	var fres *fleet.Result
	var tc *traceCounts
	if *servers > 0 {
		fc := umanycore.DefaultFleet(cfg)
		fc.Servers = *servers
		fc.LB = *lb
		fc.ShardWorkers = *shardWorkers
		if _, err := fleet.ParseLB(*lb); err != nil {
			fatal(err)
		}
		if *skew != "" {
			slow, err := parseSkew(*skew)
			if err != nil {
				fatal(err)
			}
			fc.Slowdown = slow
		}
		fc.Control = ctl
		fres = umanycore.RunFleet(fc, app, *rps, rc, *seed)
		orun, trun, latency = fres.Obs, fres.Telemetry, fres.Latency
		label = fmt.Sprintf("%s x%d servers (%s)", fres.Machine, *servers, fres.Balancer)
		if replay != nil {
			tc = &traceCounts{
				submitted: fres.Submitted, completed: fres.Completed,
				rejected: fres.Rejected, unfinished: fres.Unfinished,
			}
		}
	} else {
		res := umanycore.Run(cfg, rc)
		orun, trun, latency = res.Obs, res.Telemetry, res.Latency
		label = res.Machine
		if replay != nil {
			tc = &traceCounts{
				submitted: res.Submitted, completed: res.Completed,
				rejected: res.Rejected, unfinished: res.Unfinished,
			}
		}
	}
	if tc != nil {
		tc.records = replay.Records
		tc.replayed = replay.Replayed(rc.Normalized().Duration)
	}
	if trun != nil {
		telemetry.Publish(trun)
	}

	rep := umanycore.AnalyzeTail(orun.Spans, *top/100)

	svcName := func(svc int16) string {
		catalog := app.Catalog
		if int(svc) >= 0 && int(svc) < len(catalog.Services) {
			return catalog.Service(int(svc)).Name
		}
		return strconv.Itoa(int(svc))
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, orun.Spans, svcName)
		}); err != nil {
			fatal(err)
		}
	}
	if *exemplarsOut != "" || *exemplarsTrace != "" {
		// Tail exemplars: the K slowest stitched trees, selected by virtual
		// time only — byte-identical for every -shard-workers value.
		xs := obs.Exemplars(orun.Spans, *exemplarsK)
		if *exemplarsOut == "-" {
			if err := obs.WriteExemplarsJSON(os.Stdout, xs); err != nil {
				fatal(err)
			}
			os.Stdout.WriteString("\n")
		} else if *exemplarsOut != "" {
			if err := writeFile(*exemplarsOut, func(f *os.File) error {
				return obs.WriteExemplarsJSON(f, xs)
			}); err != nil {
				fatal(err)
			}
		}
		if *exemplarsTrace != "" {
			if err := writeFile(*exemplarsTrace, func(f *os.File) error {
				return obs.WriteChromeTrace(f, obs.ExemplarSpans(xs), svcName)
			}); err != nil {
				fatal(err)
			}
		}
	}
	if *spansOut != "" {
		if err := writeFile(*spansOut, func(f *os.File) error {
			return obs.WriteSpansCSV(f, orun.Spans)
		}); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f *os.File) error {
			return obs.WriteMetricsCSV(f, orun.Metrics)
		}); err != nil {
			fatal(err)
		}
	}
	if *seriesOut != "" {
		if trun == nil {
			fatal(fmt.Errorf("-series produced no telemetry"))
		}
		if *seriesOut == "-" {
			if err := trun.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := writeFile(*seriesOut, func(f *os.File) error {
			return trun.WriteCSV(f)
		}); err != nil {
			fatal(err)
		}
	}

	if *fabric && (fres == nil || fres.Fabric == nil) {
		fatal(fmt.Errorf("-fabric needs a coupled multi-server fleet (-servers 2 or more)"))
	}
	if *jsonOut {
		printJSON(label, app.Name, *rps, duration.Seconds(), latency, rep, tc, fres, *fabric)
		return
	}
	fmt.Printf("machine : %s\n", label)
	fmt.Printf("workload: %s @ %.0f RPS%s\n", app.Name, *rps, mixTag(*mix))
	fmt.Printf("latency : %s [us]\n", latency)
	if tc != nil {
		// Per-record completion closes the replay loop: every parsed record
		// accounted for as replayed-in-window, completed, rejected or still
		// in flight at drain end.
		fmt.Printf("trace   : %d records, %d replayed in window; %d completed (%.1f%% of records), %d rejected, %d unfinished\n",
			tc.records, tc.replayed, tc.completed,
			100*float64(tc.completed)/float64(tc.records), tc.rejected, tc.unfinished)
	}
	if fres != nil {
		// The latency line above covers completed requests only; the goodput
		// line keeps heavy rejection from masquerading as speed.
		fmt.Printf("goodput : %d completed + %d rejected (reject rate %.2f%%) = %.0f good RPS\n",
			fres.Completed, fres.Rejected,
			100*rejRate(fres.Completed, fres.Rejected),
			float64(fres.Completed)/duration.Seconds())
		if c := fres.Control; c != nil {
			fmt.Printf("control : client %s [us]\n", c.Latency)
			fmt.Printf("          %d submitted: %d completed, %d rejected (reject rate %.2f%%), %d unfinished\n",
				c.Submitted, c.Completed, c.Rejected, 100*c.RejectRate(), c.Unfinished)
			fmt.Printf("          %d retries, %d hedges (%d won, %d wasted), %d shed, %d scale-ups (%d servers active)\n",
				c.Retries, c.Hedges, c.HedgeWins, c.HedgeWaste, c.Shed, c.ScaleUps, c.ActiveServers)
		}
	}
	fmt.Println()
	rep.WriteTable(os.Stdout)
	// The traced p99 comes from the span trees alone; the measured p99 from
	// the latency sample. Agreement is the layer's end-to-end cross-check.
	fmt.Printf("\nreconcile: traced p99 %.1fus vs measured p99 %.1fus (diff %+.2f%%)\n",
		rep.P99.Micros(), latency.P99, pctDiff(rep.P99.Micros(), latency.P99))
	if *fabric {
		fmt.Println()
		writeFabricTable(fres, *shardWorkers)
	}
}

// traceCounts summarizes a -trace replay: how many parsed records arrived
// inside the window and what happened to each submitted root.
type traceCounts struct {
	records, replayed              int
	submitted, completed, rejected uint64
	unfinished                     int64
}

// whatIfCLI carries the -whatif flag subset out of main.
type whatIfCLI struct {
	stages, factors  string
	mix              bool
	rps              float64
	duration, warmup time.Duration
	seed             int64
	servers          int
	lb, skew         string
	shardWorkers     int
	top              float64
	json             bool
}

// runWhatIf drives the causal-profiling grid (internal/whatif): the same
// workload re-simulated under virtual per-stage speedups, reporting each
// stage's blame share next to the tail improvement actually bought. Output
// is fully deterministic — byte-identical for any -shard-workers value.
func runWhatIf(cfg umanycore.Config, app *umanycore.App, cli whatIfCLI) {
	stages, err := parseWhatIfStages(cli.stages)
	if err != nil {
		fatal(err)
	}
	factors, err := parseWhatIfFactors(cli.factors)
	if err != nil {
		fatal(err)
	}
	tg := whatif.Target{
		App:  app,
		RPS:  cli.rps,
		Seed: cli.seed,
		RC: umanycore.RunConfig{
			Duration: sim.Time(cli.duration.Nanoseconds()) * umanycore.Nanosecond,
			Warmup:   sim.Time(cli.warmup.Nanoseconds()) * umanycore.Nanosecond,
		},
	}
	if cli.mix {
		tg.RC.Mix = umanycore.SocialNetworkMix()
	}
	if cli.servers > 0 {
		fc := umanycore.DefaultFleet(cfg)
		fc.Servers = cli.servers
		fc.LB = cli.lb
		fc.ShardWorkers = cli.shardWorkers
		if _, err := fleet.ParseLB(cli.lb); err != nil {
			fatal(err)
		}
		if cli.skew != "" {
			slow, err := parseSkew(cli.skew)
			if err != nil {
				fatal(err)
			}
			fc.Slowdown = slow
		}
		tg.Fleet = &fc
	} else {
		tg.Machine = cfg
	}
	rep, err := whatif.Run(tg, whatif.Options{
		Stages:  stages,
		Factors: factors,
		TopFrac: cli.top / 100,
	})
	if err != nil {
		fatal(err)
	}
	if cli.json {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	rep.WriteTable(os.Stdout)
}

// parseWhatIfStages resolves -whatif-stages names against the accelerable
// stage set ("" = all of them).
func parseWhatIfStages(s string) ([]obs.Stage, error) {
	if s == "" {
		return nil, nil
	}
	accelerable := machine.SpeedupStages()
	var out []obs.Stage
	for _, p := range strings.Split(s, ",") {
		name := strings.TrimSpace(p)
		found := false
		for _, st := range accelerable {
			if strings.EqualFold(name, st.String()) {
				out = append(out, st)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown what-if stage %q (want one of %v)", name, accelerable)
		}
	}
	return out, nil
}

// parseWhatIfFactors parses the -whatif-factors ladder ("" = default).
func parseWhatIfFactors(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, p := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad what-if factor %q: %v", p, err)
		}
		if f < 0 {
			return nil, fmt.Errorf("-whatif-factors %v is negative: factors are stage cost multipliers in [0, 1]", f)
		}
		if f > 1 {
			return nil, fmt.Errorf("-whatif-factors %v is out of range: a factor above 1 would slow the stage down, not speed it up (want [0, 1])", f)
		}
		out = append(out, f)
	}
	return out, nil
}

// writeFabricTable prints the PDES fabric's self-observability report: the
// deterministic window/message aggregates, then the per-shard execution
// split and the wall-clock diagnostics (worker-pool runs only).
func writeFabricTable(fres *fleet.Result, workers int) {
	st := fres.Fabric
	fmt.Printf("pdes fabric: %d shards (dispatcher + servers), lookahead %.3fus\n",
		st.Shards, st.Lookahead.Micros())
	fmt.Printf("  windows    : %d rounds, %d events (%.1f events/window)\n",
		st.Rounds, st.WindowEvents, st.EventsPerWindow())
	fmt.Printf("  lookahead  : %.1f%% utilized (mean window width %.3fus)\n",
		100*st.LookaheadUtilization(), meanWindowUS(st))
	fmt.Printf("  messages   : %d sent, %d delivered\n", st.MessagesSent, st.MessagesDelivered)
	if len(st.ShardWindows) > 0 {
		fmt.Println("  per shard  :")
		for i := range st.ShardWindows {
			name := fmt.Sprintf("server %d", i-1)
			if i == 0 {
				name = "dispatcher"
			}
			fmt.Printf("    %-10s %10d windows %12d events\n", name, st.ShardWindows[i], st.ShardEvents[i])
		}
	}
	if st.BarrierWaitSeconds > 0 {
		fmt.Printf("  wall       : %.3fs barrier wait, %.3fs worker busy (%.1f%% busy on %d workers)\n",
			st.BarrierWaitSeconds, st.WorkerBusySeconds, 100*st.BusyFraction(workers), workers)
	}
	fmt.Printf("  run        : %d events total, %.3fs wall\n", fres.EventsProcessed, fres.WallSeconds)
}

func meanWindowUS(st *umanycore.FabricStats) float64 {
	if st.Rounds == 0 {
		return 0
	}
	return st.AdvanceSum.Micros() / float64(st.Rounds)
}

// printJSON emits the report as one stable-order JSON object built with
// stats.JSONObject — the fixed-field-order encoder shared with
// umsim/umbench; the latency field uses stats.Summary's marshaling. Trace
// replays append a "trace" section (per-record completion accounting), fleet
// runs a "fleet" section (goodput accounting, events, wall cost, fabric
// rounds), controlled runs a "control" section with the client-level
// feedback-loop counters, and -fabric the full deterministic fabric
// aggregates. Every field except fleet.wall_seconds is deterministic.
func printJSON(machineName, appName string, rps, durationSec float64, latency umanycore.Summary, rep *umanycore.BlameReport, tc *traceCounts, fres *fleet.Result, fabric bool) {
	lat, err := latency.MarshalJSON()
	if err != nil {
		fatal(err)
	}
	var o stats.JSONObject
	o.Str("machine", machineName).
		Str("app", appName).
		Float("rps", rps).
		Raw("latency", lat).
		Obj("tail", func(t *stats.JSONObject) {
			t.Float("top_frac", rep.TopFrac).
				Int("traced", int64(rep.Total)).
				Int("analyzed", int64(len(rep.Requests))).
				FloatFixed("cutoff_us", rep.Cutoff.Micros(), 3).
				FloatFixed("traced_p99_us", rep.P99.Micros(), 3).
				Obj("by_stage_us", func(s *stats.JSONObject) {
					for st := obs.Stage(0); st < obs.NumStages; st++ {
						if d := rep.ByStage[st]; d != 0 {
							s.FloatFixed(st.String(), d.Micros(), 3)
						}
					}
				}).
				Int("residual_ps", int64(rep.Residual()))
			if len(rep.ByServerStage) > 1 {
				t.Obj("by_server_stage_us", func(sv *stats.JSONObject) {
					for srv := range rep.ByServerStage {
						by := rep.ByServerStage[srv]
						sv.Obj("s"+strconv.Itoa(srv), func(b *stats.JSONObject) {
							for st := obs.Stage(0); st < obs.NumStages; st++ {
								if d := by[st]; d != 0 {
									b.FloatFixed(st.String(), d.Micros(), 3)
								}
							}
						})
					}
				})
			}
		})
	if tc != nil {
		o.Obj("trace", func(to *stats.JSONObject) {
			to.Int("records", int64(tc.records)).
				Int("replayed", int64(tc.replayed)).
				Int("submitted", int64(tc.submitted)).
				Int("completed", int64(tc.completed)).
				Int("rejected", int64(tc.rejected)).
				Int("unfinished", tc.unfinished)
		})
	}
	if fres != nil {
		o.Obj("fleet", func(fo *stats.JSONObject) {
			fo.Int("completed", int64(fres.Completed)).
				Int("rejected", int64(fres.Rejected)).
				FloatFixed("reject_rate", rejRate(fres.Completed, fres.Rejected), 6).
				Float("goodput_rps", float64(fres.Completed)/durationSec).
				Int("events_processed", int64(fres.EventsProcessed)).
				Float("wall_seconds", fres.WallSeconds)
			if fres.Fabric != nil {
				fo.Int("fabric_rounds", int64(fres.Fabric.Rounds))
			}
		})
		if c := fres.Control; c != nil {
			clat, err := c.Latency.MarshalJSON()
			if err != nil {
				fatal(err)
			}
			o.Obj("control", func(co *stats.JSONObject) {
				co.Int("submitted", int64(c.Submitted)).
					Int("completed", int64(c.Completed)).
					Int("rejected", int64(c.Rejected)).
					Int("unfinished", int64(c.Unfinished)).
					FloatFixed("reject_rate", c.RejectRate(), 6).
					Float("goodput_rps", float64(c.Completed)/durationSec).
					Int("retries", int64(c.Retries)).
					Int("shed", int64(c.Shed)).
					Int("attempts", int64(c.Attempts)).
					Int("hedges", int64(c.Hedges)).
					Int("hedge_wins", int64(c.HedgeWins)).
					Int("hedge_waste", int64(c.HedgeWaste)).
					Int("burn_edges", int64(c.BurnEdges)).
					Int("scale_ups", int64(c.ScaleUps)).
					Int("scale_downs", int64(c.ScaleDowns)).
					Int("active_servers", int64(c.ActiveServers)).
					Raw("latency", clat)
			})
		}
		if fabric && fres.Fabric != nil {
			st := fres.Fabric
			o.Obj("fabric", func(fo *stats.JSONObject) {
				fo.Int("shards", int64(st.Shards)).
					FloatFixed("lookahead_us", st.Lookahead.Micros(), 3).
					Int("rounds", int64(st.Rounds)).
					Int("messages_sent", int64(st.MessagesSent)).
					Int("messages_delivered", int64(st.MessagesDelivered)).
					Int("window_events", int64(st.WindowEvents)).
					FloatFixed("events_per_window", st.EventsPerWindow(), 3).
					FloatFixed("lookahead_utilization", st.LookaheadUtilization(), 6)
			})
		}
	}
	os.Stdout.Write(o.Bytes())
	os.Stdout.WriteString("\n")
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// controlCLI carries the control-loop flag subset out of main.
type controlCLI struct {
	retries                        int
	retryBase, retryCap, hedge     time.Duration
	retryJitter, shedProb, shedSLO float64
	scaleMin                       int
	scaleP99                       float64
	scaleLag                       time.Duration
}

// buildControl turns the control flags into a ControlConfig, or nil when no
// loop is enabled. Every bound is checked here so bad values exit 2 at
// parse time instead of panicking mid-simulation.
func buildControl(cli controlCLI) (*umanycore.ControlConfig, error) {
	switch {
	case cli.retries < 0:
		return nil, fmt.Errorf("-retries %d is out of range: want a non-negative retry budget", cli.retries)
	case cli.retryBase < 0 || cli.retryCap < 0 || cli.hedge < 0 || cli.scaleLag < 0:
		return nil, fmt.Errorf("negative control duration: -retry-base/-retry-cap/-hedge/-scale-lag must be >= 0")
	case cli.retryJitter < 0 || cli.retryJitter > 1:
		return nil, fmt.Errorf("-retry-jitter %v is out of range: want a fraction in [0, 1]", cli.retryJitter)
	case cli.shedProb < 0 || cli.shedProb > 1:
		return nil, fmt.Errorf("-shed-prob %v is out of range: want a probability in [0, 1]", cli.shedProb)
	case cli.shedProb > 0 && cli.shedSLO <= 0:
		return nil, fmt.Errorf("-shed-prob needs a positive -shed-slo objective (got %v)", cli.shedSLO)
	case cli.scaleMin < 0:
		return nil, fmt.Errorf("-scale-min %d is out of range: want a non-negative active-server floor", cli.scaleMin)
	case cli.scaleMin > 0 && cli.scaleP99 <= 0:
		return nil, fmt.Errorf("-scale-min needs a positive -scale-p99 target (got %v)", cli.scaleP99)
	}
	ctl := umanycore.ControlConfig{
		MaxRetries:     cli.retries,
		RetryBase:      sim.Time(cli.retryBase.Nanoseconds()) * umanycore.Nanosecond,
		RetryCap:       sim.Time(cli.retryCap.Nanoseconds()) * umanycore.Nanosecond,
		RetryJitter:    cli.retryJitter,
		HedgeAfter:     sim.Time(cli.hedge.Nanoseconds()) * umanycore.Nanosecond,
		ShedProb:       cli.shedProb,
		ShedSLOMicros:  cli.shedSLO,
		ScaleMin:       cli.scaleMin,
		ScaleP99Micros: cli.scaleP99,
		ScaleLag:       sim.Time(cli.scaleLag.Nanoseconds()) * umanycore.Nanosecond,
	}
	if !ctl.Enabled() {
		return nil, nil
	}
	if err := ctl.Validate(); err != nil {
		return nil, err
	}
	return &ctl, nil
}

// rejRate is rejected over responded — the goodput complement.
func rejRate(completed, rejected uint64) float64 {
	if resp := completed + rejected; resp > 0 {
		return float64(rejected) / float64(resp)
	}
	return 0
}

// parseSkew parses the -skew list of per-server slowdown factors.
func parseSkew(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad slowdown factor %q (want positive numbers, e.g. -skew 1,1,2)", p)
		}
		out = append(out, f)
	}
	return out, nil
}

func pctDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

func buildConfig(arch string, cores int) (umanycore.Config, error) {
	switch strings.ToLower(arch) {
	case "umanycore", "umc":
		return umanycore.UManycore(), nil
	case "scaleout", "so":
		return umanycore.ScaleOut(), nil
	case "serverclass", "sc":
		return umanycore.ServerClass(cores), nil
	default:
		return umanycore.Config{}, fmt.Errorf("unknown architecture %q", arch)
	}
}

func buildApp(name string) (*umanycore.App, error) {
	if strings.HasPrefix(name, "synthetic:") {
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic app format: synthetic:<dist>:<mean_us>:<blocks>")
		}
		mean, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad mean %q: %v", parts[2], err)
		}
		blocks, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("bad block count %q: %v", parts[3], err)
		}
		return workload.SyntheticApp(parts[1], mean, blocks)
	}
	for _, a := range umanycore.SocialNetworkApps() {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	for _, a := range umanycore.MuSuiteApps() {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown application %q (want one of %v)", name, workload.AppNames)
}

func mixTag(mix bool) string {
	if mix {
		return " (mixed SocialNetwork stream)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "umprof:", err)
	os.Exit(2)
}
