package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"umanycore/internal/svcgraph"
)

// wallSecondsRe matches the one non-deterministic field of the fleet JSON
// output; golden tests normalize it to 0 before comparing (the same
// normalization scripts/ci.sh applies for its cross-worker byte-compare).
var wallSecondsRe = regexp.MustCompile(`"wall_seconds":[0-9.eE+-]+`)

func normalizeWall(s string) string {
	return wallSecondsRe.ReplaceAllString(s, `"wall_seconds":0`)
}

// TestMain re-execs the test binary as the real command when the driver
// environment variable is set, so tests can run main() as a subprocess with
// real flag parsing and exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("UMPROF_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UMPROF_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		return out.String(), errb.String(), ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), 0
}

// TestJSONGolden pins umprof -json output byte for byte: the simulation is
// deterministic and the encoder is fixed-field-order, so this line only
// moves when the machine model or wire format deliberately changes.
func TestJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want := `{"machine":"uManycore","app":"Text","rps":8000,"latency":{"n":219,"mean":516.2658369452055,"p50":507.559109,"p99":781.564295,"max":797.057152},"tail":{"top_frac":0.01,"traced":219,"analyzed":3,"cutoff_us":781.564,"traced_p99_us":781.564,"by_stage_us":{"ingress":3.600,"sched":0.216,"ctxswitch":2.304,"service":1098.373,"storage":1184.514,"net":76.862},"residual_ps":0}}` + "\n"
	if stdout != want {
		t.Fatalf("json output drifted:\ngot:  %swant: %s", stdout, want)
	}
}

// TestFleetP2CJSONGolden pins the coupled-fleet path byte for byte: two
// servers (one 2× straggler), power-of-two-choices routing, cross-server
// RPCs shipped between the servers, traces stitched across both — the
// by_server_stage_us split and the fleet execution summary included. Only
// wall_seconds is normalized (the one wall-clock field). The line only moves
// when the fleet coupling or wire format deliberately changes.
func TestFleetP2CJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-servers", "2", "-lb", "p2c", "-skew", "1,2", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want := `{"machine":"uManycore x2 servers (p2c)","app":"Text","rps":8000,"latency":{"n":219,"mean":683.8382373835612,"p50":672.051632,"p99":1041.98432,"max":1139.72855},"tail":{"top_frac":0.01,"traced":219,"analyzed":3,"cutoff_us":1041.984,"traced_p99_us":1041.984,"by_stage_us":{"ingress":3.600,"sched":0.192,"ctxswitch":2.048,"service":2518.921,"storage":639.981,"net":63.540},"residual_ps":0,"by_server_stage_us":{"s0":{},"s1":{"ingress":3.600,"sched":0.192,"ctxswitch":2.048,"service":2518.921,"storage":639.981,"net":63.540}}},"fleet":{"completed":299,"rejected":0,"reject_rate":0.000000,"goodput_rps":7475,"events_processed":11683,"wall_seconds":0,"fabric_rounds":7629}}` + "\n"
	if got := normalizeWall(stdout); got != want {
		t.Fatalf("fleet json output drifted:\ngot:  %swant: %s", got, want)
	}
}

// TestFabricJSONGolden pins the PDES fabric report: -fabric appends the
// coupling's deterministic execution counters (rounds, messages, lookahead
// utilization) to the JSON output. Wall-clock diagnostics are deliberately
// absent from the JSON form, so after wall_seconds normalization the bytes
// are exact for every shard-worker count.
func TestFabricJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	args := []string{
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-servers", "2", "-lb", "p2c", "-skew", "1,2", "-json", "-fabric",
	}
	stdout, stderr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	wantFabric := `"fabric":{"shards":3,"lookahead_us":0.500,"rounds":7629,"messages_sent":1217,"messages_delivered":1217,"window_events":11683,"events_per_window":1.531,"lookahead_utilization":1.000000}`
	if !strings.Contains(stdout, wantFabric) {
		t.Fatalf("fabric report drifted:\ngot:  %swant fragment: %s", stdout, wantFabric)
	}
	// The single-engine reference must report the same fabric aggregates.
	refOut, stderr, code := runMain(t, append(args, "-shard-workers", "-1")...)
	if code != 0 {
		t.Fatalf("reference exit %d, stderr: %s", code, stderr)
	}
	if normalizeWall(refOut) != normalizeWall(stdout) {
		t.Fatalf("-shard-workers -1 fabric output diverged:\nref: %sgot: %s", refOut, stdout)
	}
}

// TestWhatIfJSONGolden pins the causal-profiling grid byte for byte: the
// paired-seed what-if runs are deterministic simulations and the encoder is
// fixed-field-order with no wall-clock fields, so the whole report only
// moves when the machine model or wire format deliberately changes.
func TestWhatIfJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	stdout, stderr, code := runMain(t,
		"-whatif", "-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-whatif-stages", "sched,net", "-whatif-factors", "0.5,0", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want := `{"machine":"uManycore","app":"Text","rps":8000,"servers":0,"seed":1,"top_frac":0.01,"factors":[0.5,0],"baseline":{"latency":{"n":219,"mean":516.2658369452055,"p50":507.559109,"p99":781.564295,"max":797.057152},"p999":797.057152,"blame":{"top_frac":0.01,"total":219,"analyzed":3,"cutoff_ps":781564295,"p99_ps":781564295,"total_ps":2365869066,"by_stage_ps":[0,0,3600000,0,216000,2304000,0,0,1098372766,1184513900,76862400,0]}},"rows":[{"stage":"sched","factor":0.5,"cell":{"latency":{"n":219,"mean":515.4405941643836,"p50":507.183771,"p99":728.633378,"max":841.154302},"p999":841.154302,"blame":{"top_frac":0.01,"total":219,"analyzed":3,"cutoff_ps":728633378,"p99_ps":728633378,"total_ps":2303054151,"by_stage_ps":[0,0,3600000,0,108000,2304000,0,0,1244177641,976616510,76248000,0]}},"d_mean_us":-0.8252427808218954,"d_p50_us":-0.3753379999999993,"d_p99_us":-52.93091700000002,"d_p999_us":44.097150000000056,"blame_share":9.129837449761897e-05,"payoff_p99":0.06772432842521295,"migration":[{"stage":"storage","base_share":0.5006675631473851,"variant_share":0.42405277773253713,"d_share":-0.07661478541484801,"d_us":-69.29912999999999},{"stage":"service","base_share":0.46425763022339633,"variant_share":0.540229434231831,"d_share":0.07597180400843467,"d_us":48.60162500000001},{"stage":"net","base_share":0.03248801935178606,"variant_share":0.033107341382699426,"d_share":0.0006193220309133676,"d_us":-0.20479999999999876}]},{"stage":"sched","factor":0,"cell":{"latency":{"n":219,"mean":519.702242552511,"p50":510.21285,"p99":758.322827,"max":854.102512},"p999":854.102512,"blame":{"top_frac":0.01,"total":219,"analyzed":3,"cutoff_ps":758322827,"p99_ps":758322827,"total_ps":2454844001,"by_stage_ps":[0,0,3600000,0,0,2304000,0,0,1161170182,1210907419,76862400,0]}},"d_mean_us":3.4364056073055735,"d_p50_us":2.653741000000025,"d_p99_us":-23.241468000000054,"d_p999_us":57.04536000000007,"blame_share":9.129837449761897e-05,"payoff_p99":0.029737115869654784,"migration":[{"stage":"service","base_share":0.46425763022339633,"variant_share":0.47301180096453715,"d_share":0.008754170741140821,"d_us":20.93247200000002},{"stage":"storage","base_share":0.5006675631473851,"variant_share":0.49327265541383786,"d_share":-0.007394907733547285,"d_us":8.797839666666619},{"stage":"net","base_share":0.03248801935178606,"variant_share":0.031310502813494255,"d_share":-0.0011775165382918035,"d_us":0}]},{"stage":"net","factor":0.5,"cell":{"latency":{"n":219,"mean":498.1436980502281,"p50":479.345866,"p99":758.411693,"max":851.527513},"p999":851.527513,"blame":{"top_frac":0.01,"total":219,"analyzed":3,"cutoff_ps":758411693,"p99_ps":758411693,"total_ps":2379750919,"by_stage_ps":[0,0,3600000,0,216000,2304000,0,0,1224749724,1110757195,38124000,0]}},"d_mean_us":-18.122138894977354,"d_p50_us":-28.213242999999977,"d_p99_us":-23.152602,"d_p999_us":54.470361000000025,"blame_share":0.03248801935178606,"payoff_p99":0.029623413131993192,"migration":[{"stage":"service","base_share":0.46425763022339633,"variant_share":0.5146545859995527,"d_share":0.05039695577615638,"d_us":42.12565266666667},{"stage":"storage","base_share":0.5006675631473851,"variant_share":0.4667535522863685,"d_share":-0.03391401086101664,"d_us":-24.585568333333356},{"stage":"net","base_share":0.03248801935178606,"variant_share":0.016020163999356775,"d_share":-0.016467855352429284,"d_us":-12.912799999999999}]},{"stage":"net","factor":0,"cell":{"latency":{"n":219,"mean":487.96266731050196,"p50":481.9927,"p99":714.505214,"max":775.026842},"p999":775.026842,"blame":{"top_frac":0.01,"total":219,"analyzed":3,"cutoff_ps":714505214,"p99_ps":714505214,"total_ps":2234564988,"by_stage_ps":[0,0,3600000,0,216000,2304000,0,0,1298711179,929733809,0,0]}},"d_mean_us":-28.303169634703522,"d_p50_us":-25.566408999999965,"d_p99_us":-67.05908099999999,"d_p999_us":-22.030309999999986,"blame_share":0.03248801935178606,"payoff_p99":0.08580110610093823,"migration":[{"stage":"service","base_share":0.46425763022339633,"variant_share":0.5811919483095382,"d_share":0.11693431808614191,"d_us":66.77947099999994},{"stage":"storage","base_share":0.5006675631473851,"variant_share":0.41606926358948215,"d_share":-0.08459829955790299,"d_us":-84.92669699999999},{"stage":"net","base_share":0.03248801935178606,"variant_share":0,"d_share":-0.03248801935178606,"d_us":-25.6208}]}]}` + "\n"
	if stdout != want {
		t.Fatalf("what-if json output drifted:\ngot:  %swant: %s", stdout, want)
	}
}

// TestWhatIfFleetShardWorkerInvariance checks the -whatif CLI contract on
// the coupled fleet: stdout is byte-identical for the worker pool and the
// -1 single-engine reference (no normalization needed — the what-if report
// carries no wall-clock fields).
func TestWhatIfFleetShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	args := []string{
		"-whatif", "-app", "Text", "-rps", "8000", "-duration", "30ms", "-warmup", "5ms",
		"-servers", "2", "-lb", "p2c", "-skew", "1,2",
		"-whatif-stages", "net", "-whatif-factors", "0.5", "-json",
	}
	ref, stderr, code := runMain(t, append(args, "-shard-workers", "-1")...)
	if code != 0 {
		t.Fatalf("reference exit %d, stderr: %s", code, stderr)
	}
	got, stderr, code := runMain(t, append(args, "-shard-workers", "4")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if got != ref {
		t.Fatalf("-shard-workers 4 what-if output diverged from -1 reference:\nref: %sgot: %s", ref, got)
	}
}

func TestBadFlagBoundsExit(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-top", "0"}, "-top 0 is out of range"},
		{[]string{"-top", "150"}, "-top 150 is out of range"},
		{[]string{"-exemplars-k", "0"}, "-exemplars-k 0 is out of range"},
		{[]string{"-whatif", "-whatif-factors", "-0.5"}, "is negative"},
		{[]string{"-whatif", "-whatif-factors", "1.5"}, "is out of range"},
		{[]string{"-whatif", "-whatif-stages", "queue"}, "unknown what-if stage"},
		{[]string{"-servers", "2", "-retries", "-1"}, "-retries -1 is out of range"},
		{[]string{"-servers", "2", "-retries", "2", "-retry-base", "-1ms"}, "negative control duration"},
		{[]string{"-servers", "2", "-retries", "2", "-retry-jitter", "1.5"}, "-retry-jitter 1.5 is out of range"},
		{[]string{"-servers", "2", "-shed-prob", "2"}, "-shed-prob 2 is out of range"},
		{[]string{"-servers", "2", "-shed-prob", "0.5"}, "-shed-prob needs a positive -shed-slo"},
		{[]string{"-servers", "2", "-scale-min", "1"}, "-scale-min needs a positive -scale-p99"},
		{[]string{"-retries", "2"}, "need a coupled fleet"},
		{[]string{"-servers", "2", "-hedge", "1ms", "-whatif"}, "not supported with -whatif"},
	} {
		_, stderr, code := runMain(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", tc.args, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, stderr, tc.want)
		}
	}
}

// TestControlJSONShardWorkerInvariance is the CLI form of the control
// determinism contract (and the template for the scripts/ci.sh gate): a
// retry+hedging fleet run prints byte-identical JSON — control section
// included — for the worker pool and the -1 single-engine reference, after
// normalizing the one wall-clock field.
func TestControlJSONShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	args := []string{
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-servers", "2", "-lb", "rr", "-skew", "1,3",
		"-retries", "2", "-hedge", "1ms", "-json",
	}
	ref, stderr, code := runMain(t, append(args, "-shard-workers", "-1")...)
	if code != 0 {
		t.Fatalf("reference exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(ref, `"control":{"submitted":`) {
		t.Fatalf("controlled run printed no control section: %s", ref)
	}
	if strings.Contains(ref, `"hedges":0,`) {
		t.Fatalf("straggler fleet never hedged — invariance run is vacuous: %s", ref)
	}
	for _, w := range []string{"1", "4"} {
		got, stderr, code := runMain(t, append(args, "-shard-workers", w)...)
		if code != 0 {
			t.Fatalf("workers=%s exit %d, stderr: %s", w, code, stderr)
		}
		if normalizeWall(got) != normalizeWall(ref) {
			t.Fatalf("-shard-workers %s control output diverged from -1 reference:\nref: %sgot: %s", w, ref, got)
		}
	}
}

func TestBadLBExits(t *testing.T) {
	_, stderr, code := runMain(t, "-servers", "2", "-lb", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown load-balancer policy") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestBadArchExits(t *testing.T) {
	_, stderr, code := runMain(t, "-arch", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown architecture") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestSeriesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	f := t.TempDir() + "/series.csv"
	_, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "30ms", "-warmup", "5ms",
		"-sample", "2ms", "-series", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	b, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,kind,t_us,value\n") {
		t.Fatalf("series csv header missing: %q", string(b[:60]))
	}
	if !strings.Contains(string(b), "telemetry.latency.p99") {
		t.Fatal("series csv missing the latency window series")
	}
}

// writeTrace materializes a synthesized trace in the umtrace -csv wire
// format for the replay tests.
func writeTrace(t *testing.T, n int) string {
	t.Helper()
	path := t.TempDir() + "/trace.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := svcgraph.WriteTrace(f, svcgraph.Synthesize(5, n)); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceFlagValidationExits pins the replay flag's fail-fast contract:
// unreadable files, malformed rows (named by line), and incompatible modes
// all exit 2 before any simulation runs.
func TestTraceFlagValidationExits(t *testing.T) {
	good := writeTrace(t, 3)
	bad := t.TempDir() + "/bad.csv"
	if err := os.WriteFile(bad, []byte("arrival_us,service,duration_us,cpu_util,rpcs\n1,a,-2,0.5,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-trace", t.TempDir() + "/nosuch.csv"}, "no such file"},
		{[]string{"-trace", bad}, `trace line 2: duration_us "-2" must be positive`},
		{[]string{"-trace", good, "-whatif"}, "not supported with -whatif"},
		{[]string{"-trace", good, "-servers", "2", "-retries", "2"}, "not supported with control flags"},
		{[]string{"-trace", good, "-app", "nosuch"}, "unknown app"},
	} {
		_, stderr, code := runMain(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", tc.args, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, stderr, tc.want)
		}
	}
}

// TestTraceReplayJSONShardWorkerInvariance is the CLI half of the replay
// determinism contract (and the template for the scripts/ci.sh round-trip
// gate): replaying one trace through the coupled fleet prints byte-identical
// JSON — trace accounting included — for the single-engine reference and any
// worker count.
func TestTraceReplayJSONShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	trace := writeTrace(t, 400)
	args := []string{
		"-trace", trace, "-app", "CPost", "-rps", "20000",
		"-duration", "30ms", "-warmup", "5ms", "-servers", "2", "-lb", "rr", "-json",
	}
	ref, stderr, code := runMain(t, append(args, "-shard-workers", "-1")...)
	if code != 0 {
		t.Fatalf("reference exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(ref, `"trace":{"records":400,`) {
		t.Fatalf("replay run did not account for all 400 records: %s", ref)
	}
	if strings.Contains(ref, `"completed":0,`) {
		t.Fatalf("replay completed nothing: %s", ref)
	}
	for _, w := range []string{"1", "4"} {
		got, stderr, code := runMain(t, append(args, "-shard-workers", w)...)
		if code != 0 {
			t.Fatalf("workers=%s exit %d, stderr: %s", w, code, stderr)
		}
		if normalizeWall(got) != normalizeWall(ref) {
			t.Fatalf("-shard-workers %s replay output diverged from -1 reference:\nref: %sgot: %s", w, ref, got)
		}
	}
}
