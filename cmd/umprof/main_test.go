package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// wallSecondsRe matches the one non-deterministic field of the fleet JSON
// output; golden tests normalize it to 0 before comparing (the same
// normalization scripts/ci.sh applies for its cross-worker byte-compare).
var wallSecondsRe = regexp.MustCompile(`"wall_seconds":[0-9.eE+-]+`)

func normalizeWall(s string) string {
	return wallSecondsRe.ReplaceAllString(s, `"wall_seconds":0`)
}

// TestMain re-execs the test binary as the real command when the driver
// environment variable is set, so tests can run main() as a subprocess with
// real flag parsing and exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("UMPROF_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UMPROF_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		return out.String(), errb.String(), ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), 0
}

// TestJSONGolden pins umprof -json output byte for byte: the simulation is
// deterministic and the encoder is fixed-field-order, so this line only
// moves when the machine model or wire format deliberately changes.
func TestJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want := `{"machine":"uManycore","app":"Text","rps":8000,"latency":{"n":219,"mean":516.2658369452055,"p50":507.559109,"p99":781.564295,"max":797.057152},"tail":{"top_frac":0.01,"traced":219,"analyzed":3,"cutoff_us":781.564,"traced_p99_us":781.564,"by_stage_us":{"ingress":3.600,"sched":0.216,"ctxswitch":2.304,"service":1098.373,"storage":1184.514,"net":76.862},"residual_ps":0}}` + "\n"
	if stdout != want {
		t.Fatalf("json output drifted:\ngot:  %swant: %s", stdout, want)
	}
}

// TestFleetP2CJSONGolden pins the coupled-fleet path byte for byte: two
// servers (one 2× straggler), power-of-two-choices routing, cross-server
// RPCs shipped between the servers, traces stitched across both — the
// by_server_stage_us split and the fleet execution summary included. Only
// wall_seconds is normalized (the one wall-clock field). The line only moves
// when the fleet coupling or wire format deliberately changes.
func TestFleetP2CJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	stdout, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-servers", "2", "-lb", "p2c", "-skew", "1,2", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want := `{"machine":"uManycore x2 servers (p2c)","app":"Text","rps":8000,"latency":{"n":219,"mean":683.8382373835612,"p50":672.051632,"p99":1041.98432,"max":1139.72855},"tail":{"top_frac":0.01,"traced":219,"analyzed":3,"cutoff_us":1041.984,"traced_p99_us":1041.984,"by_stage_us":{"ingress":3.600,"sched":0.192,"ctxswitch":2.048,"service":2518.921,"storage":639.981,"net":63.540},"residual_ps":0,"by_server_stage_us":{"s0":{},"s1":{"ingress":3.600,"sched":0.192,"ctxswitch":2.048,"service":2518.921,"storage":639.981,"net":63.540}}},"fleet":{"events_processed":11683,"wall_seconds":0,"fabric_rounds":7629}}` + "\n"
	if got := normalizeWall(stdout); got != want {
		t.Fatalf("fleet json output drifted:\ngot:  %swant: %s", got, want)
	}
}

// TestFabricJSONGolden pins the PDES fabric report: -fabric appends the
// coupling's deterministic execution counters (rounds, messages, lookahead
// utilization) to the JSON output. Wall-clock diagnostics are deliberately
// absent from the JSON form, so after wall_seconds normalization the bytes
// are exact for every shard-worker count.
func TestFabricJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	args := []string{
		"-app", "Text", "-rps", "8000", "-duration", "40ms", "-warmup", "10ms",
		"-servers", "2", "-lb", "p2c", "-skew", "1,2", "-json", "-fabric",
	}
	stdout, stderr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	wantFabric := `"fabric":{"shards":3,"lookahead_us":0.500,"rounds":7629,"messages_sent":1217,"messages_delivered":1217,"window_events":11683,"events_per_window":1.531,"lookahead_utilization":1.000000}`
	if !strings.Contains(stdout, wantFabric) {
		t.Fatalf("fabric report drifted:\ngot:  %swant fragment: %s", stdout, wantFabric)
	}
	// The single-engine reference must report the same fabric aggregates.
	refOut, stderr, code := runMain(t, append(args, "-shard-workers", "-1")...)
	if code != 0 {
		t.Fatalf("reference exit %d, stderr: %s", code, stderr)
	}
	if normalizeWall(refOut) != normalizeWall(stdout) {
		t.Fatalf("-shard-workers -1 fabric output diverged:\nref: %sgot: %s", refOut, stdout)
	}
}

func TestBadLBExits(t *testing.T) {
	_, stderr, code := runMain(t, "-servers", "2", "-lb", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown load-balancer policy") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestBadArchExits(t *testing.T) {
	_, stderr, code := runMain(t, "-arch", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown architecture") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestSeriesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	f := t.TempDir() + "/series.csv"
	_, stderr, code := runMain(t,
		"-app", "Text", "-rps", "8000", "-duration", "30ms", "-warmup", "5ms",
		"-sample", "2ms", "-series", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	b, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,kind,t_us,value\n") {
		t.Fatalf("series csv header missing: %q", string(b[:60]))
	}
	if !strings.Contains(string(b), "telemetry.latency.p99") {
		t.Fatal("series csv missing the latency window series")
	}
}
