package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"time"
)

// diffBaseline compares this run's figure rows against a checked-in
// baseline JSON file: every numeric leaf is matched by its flattened path
// (row index + field), the percent delta printed when nonzero, and a
// trajectory point appended to <path>.trajectory.jsonl. Returns an error
// (→ exit 1) when any |delta| exceeds thresholdPct, a metric appears or
// disappears, or a non-numeric leaf changes — unless warnOnly.
//
// The simulations behind the rows are deterministic, so on an unchanged
// simulator the diff is exactly zero; any drift is a real model change,
// and the threshold only decides how much of one is tolerated.
func diffBaseline(path string, rows any, thresholdPct float64, warnOnly bool) error {
	if rows == nil {
		return fmt.Errorf("-baseline needs a row-producing figure (e2e, lb, scale, whatif) in -figures")
	}
	baseRaw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base, cur any
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	curRaw, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(curRaw, &cur); err != nil {
		return err
	}
	baseLeaves, curLeaves := map[string]any{}, map[string]any{}
	flattenJSON("", base, baseLeaves)
	flattenJSON("", cur, curLeaves)

	paths := make([]string, 0, len(baseLeaves))
	for p := range baseLeaves {
		paths = append(paths, p)
	}
	for p := range curLeaves {
		if _, ok := baseLeaves[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	var compared, drifted, failed int
	var worstPath string
	var worstPct float64
	for _, p := range paths {
		b, inBase := baseLeaves[p]
		c, inCur := curLeaves[p]
		switch {
		case !inBase:
			fmt.Printf("baseline %-60s (missing)        now %v\n", p, c)
			failed++
		case !inCur:
			fmt.Printf("baseline %-60s %-15v now (missing)\n", p, b)
			failed++
		default:
			bn, bNum := b.(float64)
			cn, cNum := c.(float64)
			if !bNum || !cNum {
				if b != c {
					fmt.Printf("baseline %-60s %-15v now %v\n", p, b, c)
					failed++
				}
				continue
			}
			compared++
			pct, ok := pctDelta(bn, cn)
			if !ok {
				fmt.Printf("baseline %-60s %-15s now %s (was zero)\n", p, fmtNum(bn), fmtNum(cn))
				failed++
				continue
			}
			if pct == 0 {
				continue
			}
			drifted++
			fmt.Printf("baseline %-60s %-15s now %-15s %+7.2f%%\n", p, fmtNum(bn), fmtNum(cn), pct)
			if math.Abs(pct) > math.Abs(worstPct) {
				worstPct, worstPath = pct, p
			}
			if math.Abs(pct) > thresholdPct {
				failed++
			}
		}
	}
	fmt.Printf("baseline %s: %d metrics compared, %d drifted, %d past +/-%g%% (worst %+0.2f%% at %s)\n",
		path, compared, drifted, failed, thresholdPct, worstPct, orNone(worstPath))

	if err := appendTrajectory(path, compared, drifted, failed, worstPct, worstPath, thresholdPct); err != nil {
		fmt.Fprintln(os.Stderr, "umbench: trajectory:", err)
	}
	if failed > 0 && !warnOnly {
		return fmt.Errorf("-baseline: %d metric(s) drifted past +/-%g%% of %s", failed, thresholdPct, path)
	}
	return nil
}

// appendTrajectory records one comparison outcome as a JSON line next to
// the baseline file, building the per-baseline performance trajectory.
func appendTrajectory(path string, compared, drifted, failed int, worstPct float64, worstPath string, thresholdPct float64) error {
	f, err := os.OpenFile(path+".trajectory.jsonl", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	point := map[string]any{
		"time":           time.Now().UTC().Format(time.RFC3339),
		"compared":       compared,
		"drifted":        drifted,
		"past_threshold": failed,
		"threshold_pct":  thresholdPct,
		"worst_pct":      worstPct,
		"worst_path":     orNone(worstPath),
	}
	b, err := json.Marshal(point)
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	return err
}

// flattenJSON reduces a decoded JSON tree to path→leaf: objects extend the
// path with .key, arrays with [index].
func flattenJSON(prefix string, v any, out map[string]any) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenJSON(p, child, out)
		}
	case []any:
		for i, child := range t {
			flattenJSON(prefix+"["+strconv.Itoa(i)+"]", child, out)
		}
	default:
		out[prefix] = v
	}
}

// pctDelta returns the percent change base→cur; ok is false when base is
// zero and cur is not (no finite percentage exists).
func pctDelta(base, cur float64) (pct float64, ok bool) {
	if base == 0 {
		return 0, cur == 0
	}
	return 100 * (cur - base) / base, true
}

func fmtNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func orNone(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
