package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLBJSONGolden pins the full `-quick -figures lb -json` output against a
// checked-in golden file: one end-to-end guard over the simulation models,
// seed derivation, and the JSON encoding at once. If a model change is
// intentional, regenerate with:
//
//	go run ./cmd/umbench -quick -figures lb -json cmd/umbench/testdata/lb_quick_golden.json
func TestLBJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick lb figure (~6s)")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "lb_quick_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runMain(t, "-quick", "-figures", "lb", "-json", "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// stdout carries the text table first, then the JSON array.
	i := strings.Index(stdout, "[\n")
	if i < 0 {
		t.Fatalf("no JSON array in output:\n%s", stdout)
	}
	if got := stdout[i:]; got != string(want) {
		t.Errorf("lb JSON drifted from golden (intentional model change? regenerate per test comment).\n got: %s\nwant: %s", got, want)
	}
}

// TestCacheCLIColdWarmVerify drives the -cache flags end to end through the
// re-exec harness: a cold run fills the directory, a warm run reuses it with
// byte-identical output, and -cache-verify recomputes clean.
func TestCacheCLIColdWarmVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick lb figure three times (~12s)")
	}
	dir := t.TempDir()
	args := []string{"-quick", "-figures", "lb", "-json", "-", "-cache", dir}

	cold, coldErr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("cold exit %d: %s", code, coldErr)
	}
	if !strings.Contains(coldErr, "misses") || !strings.Contains(coldErr, "[cache ") {
		t.Fatalf("no cache stats line on stderr:\n%s", coldErr)
	}

	warm, warmErr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("warm exit %d: %s", code, warmErr)
	}
	if warm != cold {
		t.Fatal("warm stdout differs from cold")
	}
	if !strings.Contains(warmErr, " 0 misses") {
		t.Fatalf("warm run missed cells:\n%s", warmErr)
	}

	ver, verErr, code := runMain(t, append(args, "-cache-verify")...)
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, verErr)
	}
	if ver != cold {
		t.Fatal("verify stdout differs from cold")
	}
	if !strings.Contains(verErr, "0 verify mismatches") {
		t.Fatalf("verify stats missing:\n%s", verErr)
	}
}

// TestCacheCLICorruptionRecovers flips a digit inside one stored payload —
// the checksum no longer matches, so the next run must invalidate the entry,
// recompute it, and still exit 0 with correct output.
func TestCacheCLICorruptionRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick lb figure twice (~12s)")
	}
	dir := t.TempDir()
	args := []string{"-quick", "-figures", "lb", "-json", "-", "-cache", dir}
	cold, stderr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("cold exit %d: %s", code, stderr)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "??", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v", err)
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(b), `"remote_served":`)
	if i < 0 {
		t.Fatalf("payload shape changed, no remote_served in %s", b)
	}
	k := i + len(`"remote_served":`)
	b[k] = b[k]%9 + '1' // change the leading digit; never maps to itself
	if err := os.WriteFile(entries[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr, code := runMain(t, args...)
	if code != 0 {
		t.Fatalf("corrupt entry must recompute, not fail: exit %d: %s", code, stderr)
	}
	if out != cold {
		t.Fatal("output after corruption recovery differs from cold run")
	}
	if !strings.Contains(stderr, "1 invalidated") {
		t.Fatalf("corruption not counted on the stats line:\n%s", stderr)
	}
}

func TestCacheCLIFlagValidation(t *testing.T) {
	if _, stderr, code := runMain(t, "-cache-verify", "-figures", "power"); code != 2 ||
		!strings.Contains(stderr, "require -cache") {
		t.Fatalf("-cache-verify without -cache: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := runMain(t, "-cache-clear", "-figures", "power"); code != 2 ||
		!strings.Contains(stderr, "require -cache") {
		t.Fatalf("-cache-clear without -cache: exit %d, stderr %q", code, stderr)
	}
}
