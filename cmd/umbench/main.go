// Command umbench regenerates every table and figure of the paper's
// evaluation and prints them as text tables — the source of EXPERIMENTS.md.
//
// Usage:
//
//	umbench [-quick] [-seed N] [-parallel N] [-shard-workers N]
//	        [-figures 1,2,3,...] [-json FILE]
//	        [-cache DIR] [-cache-verify] [-cache-clear]
//
// Figure names: 1 2 3 4 5 6 7 8 9 e2e 15 18 19 20 68 power lb graph scale
// control whatif.
// Default: all. -parallel bounds the sweep worker pool (default: all cores)
// and -shard-workers the per-fleet PDES worker pool; output is bit-identical
// for any value of either.
//
// -baseline FILE diffs this run's figure rows (the -json payload) against a
// checked-in baseline JSON (e.g. BENCH_lb_baseline.json), prints per-metric
// Δ%, appends a trajectory point to FILE.trajectory.jsonl, and exits
// nonzero when any |Δ| exceeds -baseline-threshold (unless -baseline-warn).
//
// -cache DIR keeps a content-addressed store of finished sweep cells, so an
// interrupted or re-run regeneration only simulates cells whose inputs
// changed. -cache-verify recomputes every cached cell anyway and exits
// nonzero if any recomputation fails to reproduce the cached bytes.
// -cache-clear empties the store before running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"umanycore"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/telemetry"
	"umanycore/internal/textplot"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity settings (faster, noisier)")
	flag.BoolVar(&ascii, "ascii", false, "render ASCII charts next to the tables")
	flag.StringVar(&jsonOut, "json", "", "also write the e2e grid as JSON to FILE ('-' for stdout); latency objects use the stats.Summary encoding shared with umprof/umsim")
	seed := flag.Int64("seed", 42, "simulation seed")
	parallel := flag.Int("parallel", 0, "sweep workers (<=0: all cores); results are identical for any value")
	shardWorkers := flag.Int("shard-workers", 0, "PDES shard workers per coupled fleet (0/1: sequential, -1: single-engine reference); results are identical for any value")
	figures := flag.String("figures", "all", "comma-separated figure list (1..9, e2e, 15, 18, 19, 20, 68, power, lb, graph, scale, control, whatif)")
	baseline := flag.String("baseline", "", "diff this run's figure rows against a checked-in baseline JSON FILE and exit nonzero past -baseline-threshold")
	baselineThreshold := flag.Float64("baseline-threshold", 5, "max |delta| percent tolerated by -baseline before failing")
	baselineWarn := flag.Bool("baseline-warn", false, "report -baseline drift without failing (warn-only)")
	serve := flag.String("serve", "", "serve live /metrics, /healthz, /progress (sweep cells done + ETA) and pprof on this address during the regeneration (e.g. :9090)")
	cacheDir := flag.String("cache", "", "content-addressed sweep-cell cache directory (created if missing); re-runs skip cells already simulated with identical inputs")
	cacheVerify := flag.Bool("cache-verify", false, "recompute cached cells and fail if any recomputation does not reproduce the cached bytes (requires -cache)")
	cacheClear := flag.Bool("cache-clear", false, "empty the cache before running (requires -cache)")
	flag.Parse()

	if *shardWorkers < -1 {
		fmt.Fprintf(os.Stderr, "umbench: -shard-workers %d is out of range: want -1 (single-engine reference), 0/1 (sequential) or a worker count\n", *shardWorkers)
		os.Exit(2)
	}
	if *baselineThreshold < 0 {
		fmt.Fprintf(os.Stderr, "umbench: -baseline-threshold %v is out of range: want a non-negative drift percentage\n", *baselineThreshold)
		os.Exit(2)
	}

	var cache *sweepcache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = sweepcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(2)
		}
		if *cacheClear {
			if err := cache.Clear(); err != nil {
				fmt.Fprintln(os.Stderr, "umbench:", err)
				os.Exit(2)
			}
		}
		cache.SetVerify(*cacheVerify)
		sweep.SetCache(cache)
	} else if *cacheVerify || *cacheClear {
		fmt.Fprintln(os.Stderr, "umbench: -cache-verify and -cache-clear require -cache DIR")
		os.Exit(2)
	}

	if *serve != "" {
		addr, err := telemetry.ParseServeAddr(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(2)
		}
		srv, err := telemetry.Serve(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "umbench: serving /metrics /healthz /progress /debug/pprof on %s\n", srv.Addr)
	}

	o := umanycore.DefaultExperimentOptions()
	o.Seed = *seed
	o.Parallel = *parallel
	o.ShardWorkers = *shardWorkers
	if *quick {
		o = o.Quick()
	}

	known := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "e2e", "15", "18", "19", "20", "68", "power", "lb", "graph", "scale", "control", "whatif"}
	want := map[string]bool{}
	if *figures == "all" {
		for _, f := range known {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figures, ",") {
			name := strings.TrimSpace(f)
			found := false
			for _, k := range known {
				if name == k {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "umbench: unknown figure %q (want a comma-separated subset of %v)\n", name, known)
				os.Exit(2)
			}
			want[name] = true
		}
	}

	runners := []struct {
		key string
		fn  func()
	}{
		{"1", func() { fig1(o) }},
		{"2", func() { cdf("Figure 2: CDF of per-server load (RPS)", umanycore.Fig2(o), "%6.0f RPS") }},
		{"3", func() { fig3(o) }},
		{"4", func() { cdf("Figure 4: CDF of CPU utilization per request", umanycore.Fig4(o), "%6.2f") }},
		{"5", func() { cdf("Figure 5: CDF of RPC invocations per request", umanycore.Fig5(o), "%6.0f RPCs") }},
		{"6", func() { fig6(o) }},
		{"7", func() { fig7(o) }},
		{"8", func() { fig8(o) }},
		{"9", func() { fig9(o) }},
		{"e2e", func() { endToEnd(o) }},
		{"15", func() { fig15(o) }},
		{"18", func() { fig18(o) }},
		{"19", func() { fig19(o) }},
		{"20", func() { fig20(o) }},
		{"68", func() { sec68(o) }},
		{"power", func() { powerTable() }},
		{"lb", func() { fleetLB(o) }},
		{"graph", func() { fleetGraph(o) }},
		{"scale", func() { fleetScale(o) }},
		{"control", func() { fleetControl(o) }},
		{"whatif", func() { whatIfFig(o) }},
	}
	workers := sweep.Workers(o.Parallel)
	var totalWall, totalBusy time.Duration
	for _, r := range runners {
		if !want[r.key] {
			continue
		}
		sweep.ResetBusy()
		start := time.Now()
		r.fn()
		wall := time.Since(start)
		busy := sweep.Busy()
		totalWall += wall
		totalBusy += busy
		fmt.Fprintf(os.Stderr, "[%s done in %v%s]\n",
			r.key, wall.Round(time.Millisecond), speedupNote(busy, wall, workers))
	}
	fmt.Fprintf(os.Stderr, "[total %v with %d workers%s]\n",
		totalWall.Round(time.Millisecond), workers, speedupNote(totalBusy, totalWall, workers))

	if cache != nil {
		s := cache.Snapshot()
		fmt.Fprintf(os.Stderr, "[cache %s: %d hits, %d misses, %d stores, %d invalidated, %d verify mismatches]\n",
			cache.Dir(), s.Hits, s.Misses, s.Stores, s.Invalid, s.Mismatches)
		if lines := cache.Mismatches(); len(lines) > 0 {
			for _, l := range lines {
				fmt.Fprintln(os.Stderr, "umbench: verify mismatch:", l)
			}
			os.Exit(1)
		}
	}

	if *baseline != "" {
		if err := diffBaseline(*baseline, capturedRows, *baselineThreshold, *baselineWarn); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

// speedupNote formats the estimated speedup over -parallel 1 for one span of
// wall time: sweep busy time (the sum of per-job sim durations, which is what
// a single worker would have spent) divided by elapsed time. The estimate is
// capped at min(workers, GOMAXPROCS): when workers oversubscribe the cores,
// time-slicing inflates per-job durations, and the machine cannot beat its
// core count on CPU-bound sims anyway. Empty when the span ran no sweep jobs
// or gained nothing.
func speedupNote(busy, wall time.Duration, workers int) string {
	if busy <= 0 || wall <= 0 {
		return ""
	}
	s := float64(busy) / float64(wall)
	if cap := float64(min(workers, runtime.GOMAXPROCS(0))); s > cap {
		s = cap
	}
	if s < 1.05 {
		return ""
	}
	return fmt.Sprintf(", est %.1fx vs -parallel 1", s)
}

// ascii enables chart rendering (set by the -ascii flag).
var ascii bool

// jsonOut, when non-empty, is where endToEnd writes its machine-readable
// grid (set by the -json flag).
var jsonOut string

// capturedRows holds the last row-producing figure's rows so -baseline can
// diff them against a checked-in file after the run.
var capturedRows any

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func fig1(o umanycore.ExperimentOptions) {
	header("Figure 1: microarchitectural optimizations, monolithic vs microservice speedup")
	fmt.Printf("%-18s %-14s %10s\n", "optimization", "workload", "speedup")
	for _, r := range umanycore.Fig1(o) {
		fmt.Printf("%-18s %-14s %9.2fx\n", r.Optimization, r.Class, r.Speedup)
	}
}

func cdf(title string, pts []umanycore.CDFPoint, xfmt string) {
	header(title)
	fmt.Printf("%12s %8s\n", "x", "P(X<=x)")
	for _, p := range pts {
		fmt.Printf("%12s %8.3f\n", fmt.Sprintf(xfmt, p.X), p.P)
	}
	if ascii {
		var tp []textplot.Point
		for _, p := range pts {
			tp = append(tp, textplot.Point{X: p.X, Y: p.P})
		}
		fmt.Println(textplot.CDF("", tp, 60, 12))
	}
}

func fig3(o umanycore.ExperimentOptions) {
	header("Figure 3: response time vs number of queues (ScaleOut, 50K RPS)")
	fmt.Printf("%7s %12s %12s %14s %14s\n", "queues", "avg [us]", "tail [us]", "avg+steal", "tail+steal")
	for _, r := range umanycore.Fig3(o) {
		fmt.Printf("%7d %12.1f %12.1f %14.1f %14.1f\n",
			r.Queues, r.AvgMicros, r.TailMicros, r.AvgStealMicros, r.TailStealMicros)
	}
}

func fig6(o umanycore.ExperimentOptions) {
	header("Figure 6: normalized tail latency vs context-switch overhead (ScaleOut, central dispatcher)")
	fmt.Printf("%10s %10s %10s %10s\n", "CS cycles", "5K RPS", "10K RPS", "50K RPS")
	rows6 := umanycore.Fig6(o)
	for _, r := range rows6 {
		fmt.Printf("%10d %10.2f %10.2f %10.2f\n",
			r.CSCycles, r.NormTail[5000], r.NormTail[10000], r.NormTail[50000])
	}
	if ascii {
		var tp []textplot.Point
		for i, r := range rows6 {
			tp = append(tp, textplot.Point{X: float64(i), Y: r.NormTail[50000]})
		}
		fmt.Println(textplot.Line("norm tail @50K (log y; x = CS sweep index)", tp, 60, 10, true))
	}
}

func fig7(o umanycore.ExperimentOptions) {
	header("Figure 7: tail inflation from ICN contention (normalized to no contention)")
	fmt.Printf("%10s %10s %10s\n", "RPS", "2D mesh", "fat-tree")
	rows7 := umanycore.Fig7(o)
	var bars []textplot.Bar
	for _, r := range rows7 {
		fmt.Printf("%10d %9.2fx %9.2fx\n", r.RPS, r.MeshNorm, r.FatTreeNorm)
		bars = append(bars,
			textplot.Bar{Label: fmt.Sprintf("%dK mesh", r.RPS/1000), Value: r.MeshNorm},
			textplot.Bar{Label: fmt.Sprintf("%dK ftree", r.RPS/1000), Value: r.FatTreeNorm})
	}
	if ascii {
		fmt.Println(textplot.BarChart("", bars, 50))
	}
}

func fig8(o umanycore.ExperimentOptions) {
	header("Figure 8: common (shareable) fraction of a handler's footprint")
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "group", "d-page", "d-line", "i-page", "i-line")
	for _, r := range umanycore.Fig8(o) {
		fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f\n", r.Group, r.DPage, r.DLine, r.IPage, r.ILine)
	}
}

func fig9(o umanycore.ExperimentOptions) {
	header("Figure 9: TLB and cache hit rates for handler access streams")
	fmt.Printf("%-14s %-10s %9s\n", "class", "structure", "hit rate")
	for _, r := range umanycore.Fig9(o) {
		fmt.Printf("%-14s %-10s %9.3f\n", r.Class, r.Structure, r.HitRate)
	}
}

func endToEnd(o umanycore.ExperimentOptions) {
	rows := umanycore.EndToEnd(o)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Arch != rows[j].Arch {
			return rows[i].Arch < rows[j].Arch
		}
		if rows[i].RPS != rows[j].RPS {
			return rows[i].RPS < rows[j].RPS
		}
		return rows[i].App < rows[j].App
	})
	header("Figures 14/16/17: per-request-type latency in the mixed load (all architectures)")
	fmt.Printf("%-15s %8s %-9s %12s %12s %8s %6s\n",
		"arch", "RPS", "app", "avg [us]", "p99 [us]", "p99/avg", "util")
	for _, r := range rows {
		fmt.Printf("%-15s %8.0f %-9s %12.1f %12.1f %8.2f %6.3f\n",
			r.Arch, r.RPS, r.App, r.AvgMicros, r.TailMicros, r.TailToAvg, r.Utilization)
	}
	for _, metric := range []string{"tail", "avg"} {
		for _, red := range umanycore.Reductions(rows, metric) {
			fmt.Printf("uManycore %s reduction vs %-15s: 5K=%.1fx 10K=%.1fx 15K=%.1fx\n",
				metric, red.Baseline, red.ByLoad[5000], red.ByLoad[10000], red.ByLoad[15000])
		}
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

// writeRowsJSON emits a figure's row slice as a JSON array. Row fields
// encode in declaration order and any latency objects via stats.Summary's
// stable MarshalJSON, so the output is byte-identical run to run — the
// property the golden-output test and the ci.sh cold/warm diff pin down.
func writeRowsJSON(path string, rows any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func fig15(o umanycore.ExperimentOptions) {
	rows := umanycore.Fig15(o)
	sort.Slice(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	header("Figure 15: cumulative technique breakdown at 15K RPS (tail reduction vs ScaleOut)")
	fmt.Printf("%-9s %10s %12s %10s %10s\n", "app", "+villages", "+leaf-spine", "+hw-sched", "+hw-cs")
	for _, r := range rows {
		fmt.Printf("%-9s %9.2fx %11.2fx %9.2fx %9.2fx\n", r.App, r.Villages, r.LeafSpine, r.HWSched, r.HWCS)
	}
	v, l, h, c := umanycore.Fig15Average(rows)
	fmt.Printf("%-9s %9.2fx %11.2fx %9.2fx %9.2fx   (paper: 1.1x 2.3x 3.9x 7.4x)\n", "average", v, l, h, c)
}

func fig18(o umanycore.ExperimentOptions) {
	rows := umanycore.Fig18(o)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Arch != rows[j].Arch {
			return rows[i].Arch < rows[j].Arch
		}
		return rows[i].App < rows[j].App
	})
	header("Figure 18: maximum QoS-safe throughput (P99 <= 5x contention-free average)")
	fmt.Printf("%-15s %-9s %12s\n", "arch", "app", "max RPS")
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		fmt.Printf("%-15s %-9s %12.0f\n", r.Arch, r.App, r.MaxRPS)
		sums[r.Arch] += r.MaxRPS
		counts[r.Arch]++
	}
	umc := sums["uManycore"] / float64(counts["uManycore"])
	if sc := sums["ServerClass-40"] / float64(counts["ServerClass-40"]); sc > 0 {
		fmt.Printf("uManycore / ServerClass throughput: %.1fx (paper: 15.5x)\n", umc/sc)
	}
	if so := sums["ScaleOut"] / float64(counts["ScaleOut"]); so > 0 {
		fmt.Printf("uManycore / ScaleOut throughput:    %.1fx (paper: 4.3x)\n", umc/so)
	}
}

func fig19(o umanycore.ExperimentOptions) {
	rows := umanycore.Fig19(o)
	sort.Slice(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	header("Figure 19: uManycore topology sensitivity at 15K RPS (tail normalized to 8x4x32)")
	fmt.Printf("%-9s %9s %9s %9s %9s\n", "app", "8x4x32", "32x1x32", "32x2x16", "32x4x8")
	for _, r := range rows {
		fmt.Printf("%-9s %9.2f %9.2f %9.2f %9.2f\n", r.App,
			r.NormTail["8x4x32"], r.NormTail["32x1x32"], r.NormTail["32x2x16"], r.NormTail["32x4x8"])
	}
}

func fig20(o umanycore.ExperimentOptions) {
	header("Figure 20: synthetic service-time distributions, absolute P99 [us]")
	fmt.Printf("%-13s %8s %13s %11s %11s\n", "distribution", "RPS", "ServerClass", "ScaleOut", "uManycore")
	for _, r := range umanycore.Fig20(o) {
		fmt.Printf("%-13s %8.0f %13.1f %11.1f %11.1f\n",
			r.Dist, r.RPS, r.ServerClassTail, r.ScaleOutTail, r.UManycoreTail)
	}
}

func sec68(o umanycore.ExperimentOptions) {
	res := umanycore.Sec68(o)
	header("Section 6.8: iso-area comparison (128-core ServerClass vs uManycore)")
	fmt.Printf("%-9s %8s %14s %13s %9s\n", "app", "RPS", "SC-128 p99", "uMC p99", "ratio")
	for _, r := range res.Rows {
		fmt.Printf("%-9s %8.0f %14.1f %13.1f %8.2fx\n", r.App, r.RPS, r.SC128Tail, r.UMCTail, r.TailRatio)
	}
	fmt.Printf("mean tail ratio: %.2fx (paper: 7.3x)\n", res.MeanTailRatio)
	fmt.Printf("power ratio:     %.2fx (paper: 3.2x)\n", res.PowerRatio)
	fmt.Printf("area ratio:      %.2fx (iso-area by construction)\n", res.AreaRatio)
}

func fleetLB(o umanycore.ExperimentOptions) {
	rows := umanycore.FleetLB(o)
	header("Load-balancer study: coupled 4-server uManycore fleet, one 3x straggler, P99 [us]")
	fmt.Printf("%-7s %10s %10s %10s %10s %10s %10s %8s %10s\n",
		"policy", "rps/srv", "mean", "p99", "tail/avg", "completed", "rejected", "rej%", "remote")
	anyUnequal := false
	for _, r := range rows {
		fmt.Printf("%-7s %10.0f %10.1f %10.1f %10.2f %10d %10d %7.2f%%%s %9d\n",
			r.Policy, r.PerServerRPS, r.MeanMicros, r.P99Micros, r.TailToAvg,
			r.Completed, r.Rejected, 100*r.RejectRate, parityMark(r.RejectParity), r.RemoteServed)
		anyUnequal = anyUnequal || !r.RejectParity
	}
	if anyUnequal {
		fmt.Println(parityNote)
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

func fleetGraph(o umanycore.ExperimentOptions) {
	rows := umanycore.FleetGraph(o)
	header("Service-graph study: layered DAGs placed across a coupled 4-server fleet, P99 [us]")
	fmt.Printf("%-10s %6s %7s %9s %9s %10s %10s %10s %10s %10s %8s %10s\n",
		"placement", "depth", "fanout", "services", "rps/srv", "mean", "p99", "tail/avg", "completed", "rejected", "rej%", "remote")
	for _, r := range rows {
		fmt.Printf("%-10s %6d %7d %9d %9.0f %10.1f %10.1f %10.2f %10d %10d %7.2f%% %10d\n",
			r.Placement, r.Depth, r.Fanout, r.Services, r.PerServerRPS,
			r.MeanMicros, r.P99Micros, r.TailToAvg,
			r.Completed, r.Rejected, 100*r.RejectRate, r.RemoteServed)
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

func fleetScale(o umanycore.ExperimentOptions) {
	rows := umanycore.FleetScale(o)
	header("Fleet-scale study: coupled uManycore fleets, one 3x straggler per 4 servers, P99 [us]")
	fmt.Printf("%-7s %8s %12s %10s %10s %10s %10s %10s %8s %12s\n",
		"policy", "servers", "total rps", "mean", "p99", "tail/avg", "completed", "rejected", "rej%", "events")
	anyUnequal := false
	for _, r := range rows {
		fmt.Printf("%-7s %8d %12.0f %10.1f %10.1f %10.2f %10d %10d %7.2f%%%s %11d\n",
			r.Policy, r.Servers, r.TotalRPS, r.MeanMicros, r.P99Micros, r.TailToAvg,
			r.Completed, r.Rejected, 100*r.RejectRate, parityMark(r.RejectParity), r.EventsProcessed)
		anyUnequal = anyUnequal || !r.RejectParity
	}
	if anyUnequal {
		fmt.Println(parityNote)
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

// parityNote is the footnote printed under a fleet table whenever some load
// column's policies responded at unequal reject rates.
const parityNote = "(* = policies at this load rejected at unequal rates; their latency columns are not apples-to-apples)"

// parityMark flags a row whose load column failed reject-rate parity.
func parityMark(equal bool) string {
	if equal {
		return " "
	}
	return "*"
}

func fleetControl(o umanycore.ExperimentOptions) {
	rows := umanycore.FleetControl(o)
	header("Closed-loop control study: retry storm vs capped backoff, hedge deadlines, autoscaler lag")
	fmt.Printf("%-8s %-12s %8s %9s %9s %8s %9s %8s %7s %6s %6s %6s %6s\n",
		"scenario", "variant", "rps/srv", "mean", "p99", "rej%", "goodput", "retries", "shed", "hedge", "won", "ups", "active")
	for _, r := range rows {
		fmt.Printf("%-8s %-12s %8.0f %9.1f %9.1f %7.2f%% %9.0f %8d %7d %6d %6d %6d %6d\n",
			r.Scenario, r.Variant, r.PerServerRPS, r.MeanMicros, r.P99Micros,
			100*r.RejectRate, r.GoodputRPS, r.Retries, r.Shed, r.Hedges, r.HedgeWins, r.ScaleUps, r.ActiveServers)
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

func whatIfFig(o umanycore.ExperimentOptions) {
	rows := umanycore.WhatIf(o)
	header("What-if causal profile: virtual stage speedups at the top load (HomeT), blame share vs actual P99 payoff")
	fmt.Printf("%-15s %-10s %7s %11s %11s %11s %8s %9s  %s\n",
		"arch", "stage", "factor", "dmean [us]", "dp99 [us]", "dp99.9[us]", "blame%", "payoff%", "top migration")
	for _, r := range rows {
		fmt.Printf("%-15s %-10s %7.2f %+11.1f %+11.1f %+11.1f %7.1f%% %8.1f%%  %s %+.1fpp\n",
			r.Arch, r.Stage, r.Factor, r.DMeanMicros, r.DP99Micros, r.DP999Micros,
			100*r.BlameShare, 100*r.PayoffP99, r.TopMover, 100*r.TopMoverDeltaShare)
	}
	capturedRows = rows
	if jsonOut != "" {
		if err := writeRowsJSON(jsonOut, rows); err != nil {
			fmt.Fprintln(os.Stderr, "umbench:", err)
			os.Exit(1)
		}
	}
}

func powerTable() {
	header("Section 5 / 6.8: package power and area (CACTI + McPAT stand-in)")
	fmt.Printf("%-16s %10s %12s\n", "package", "power [W]", "area [mm^2]")
	for _, name := range []string{"uManycore", "ScaleOut", "ServerClass-40", "ServerClass-128"} {
		fmt.Printf("%-16s %10.1f %12.1f\n", name, umanycore.PackagePower(name), umanycore.PackageArea(name))
	}
}
