package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"umanycore"
	"umanycore/internal/stats"
)

func TestMain(m *testing.M) {
	if os.Getenv("UMBENCH_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UMBENCH_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		return out.String(), errb.String(), ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), 0
}

// TestPowerTableGolden pins the closed-form power/area table — no simulation
// behind it, so it runs instantly and any drift means the package model moved.
func TestPowerTableGolden(t *testing.T) {
	stdout, stderr, code := runMain(t, "-figures", "power")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, row := range []string{
		"uManycore             430.2        547.6",
		"ScaleOut              417.9        532.2",
		"ServerClass-40        409.1        176.1",
		"ServerClass-128      1309.0        547.2",
	} {
		if !strings.Contains(stdout, row) {
			t.Errorf("power table missing row %q in:\n%s", row, stdout)
		}
	}
}

// TestE2EJSONGolden checks the machine-readable grid encoding on constructed
// rows (running the real e2e figure takes minutes). Field order and float
// formatting must stay byte-stable — downstream diffing depends on it.
func TestE2EJSONGolden(t *testing.T) {
	rows := []umanycore.E2ERow{
		{
			App: "CPost", RPS: 15000, Arch: "uManycore",
			Latency:     stats.Summary{N: 100, Mean: 50.5, Median: 48, P99: 120.25, Max: 130},
			TailToAvg:   2.381188118811881,
			Utilization: 0.25,
			Unfinished:  0,
		},
		{
			App: "Text", RPS: 5000, Arch: "ScaleOut",
			Latency:     stats.Summary{N: 7, Mean: 10, Median: 9, P99: 30, Max: 31},
			TailToAvg:   3,
			Utilization: 0.0625,
			Unfinished:  2,
		},
	}
	f := t.TempDir() + "/e2e.json"
	if err := writeRowsJSON(f, rows); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "app": "CPost",
    "rps": 15000,
    "arch": "uManycore",
    "latency": {
      "n": 100,
      "mean": 50.5,
      "p50": 48,
      "p99": 120.25,
      "max": 130
    },
    "p99_to_avg": 2.381188118811881,
    "util": 0.25,
    "unfinished": 0
  },
  {
    "app": "Text",
    "rps": 5000,
    "arch": "ScaleOut",
    "latency": {
      "n": 7,
      "mean": 10,
      "p50": 9,
      "p99": 30,
      "max": 31
    },
    "p99_to_avg": 3,
    "util": 0.0625,
    "unfinished": 2
  }
]
`
	if string(b) != want {
		t.Fatalf("e2e json drifted:\ngot:\n%s\nwant:\n%s", b, want)
	}
}

// TestDiffBaseline exercises the -baseline comparator on constructed rows:
// identical rows pass, drift past the threshold fails (unless warn-only),
// vanished metrics fail, and every comparison appends a trajectory point.
func TestDiffBaseline(t *testing.T) {
	type row struct {
		Policy    string  `json:"policy"`
		P99Micros float64 `json:"p99_us"`
		Rejected  int     `json:"rejected"`
	}
	base := []row{{"rr", 1000, 0}, {"p2c", 800, 2}}
	path := t.TempDir() + "/BENCH_test_baseline.json"
	if err := writeRowsJSON(path, base); err != nil {
		t.Fatal(err)
	}

	if err := diffBaseline(path, base, 5, false); err != nil {
		t.Fatalf("identical rows failed: %v", err)
	}
	drifted := []row{{"rr", 1200, 0}, {"p2c", 800, 2}}
	if err := diffBaseline(path, drifted, 5, false); err == nil {
		t.Fatal("20% p99 drift passed a 5% threshold")
	}
	if err := diffBaseline(path, drifted, 5, true); err != nil {
		t.Fatalf("warn-only still failed: %v", err)
	}
	if err := diffBaseline(path, drifted, 25, false); err != nil {
		t.Fatalf("20%% drift failed a 25%% threshold: %v", err)
	}
	if err := diffBaseline(path, base[:1], 5, false); err == nil {
		t.Fatal("missing row passed")
	}
	renamed := []row{{"least", 1000, 0}, {"p2c", 800, 2}}
	if err := diffBaseline(path, renamed, 5, false); err == nil {
		t.Fatal("changed string field passed")
	}

	traj, err := os.ReadFile(path + ".trajectory.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(traj), "\n"); lines != 6 {
		t.Fatalf("trajectory has %d points, want 6:\n%s", lines, traj)
	}
	if !strings.Contains(string(traj), `"worst_path":"[0].p99_us"`) {
		t.Fatalf("trajectory missing worst path:\n%s", traj)
	}
}

// TestBaselineNeedsRowsExit pins the clean error when -baseline is given
// without a row-producing figure.
func TestBaselineNeedsRowsExit(t *testing.T) {
	_, stderr, code := runMain(t, "-figures", "power", "-baseline", "nonexistent.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "row-producing figure") {
		t.Fatalf("stderr %q", stderr)
	}
}

// TestBadFlagBoundsExit pins the parse-time flag validation: bad bounds and
// unknown figure names exit 2 before any simulation starts.
func TestBadFlagBoundsExit(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-figures", "lb,bogus"}, `unknown figure "bogus"`},
		{[]string{"-figures", ""}, `unknown figure ""`},
		{[]string{"-shard-workers", "-2", "-figures", "power"}, "-shard-workers -2 is out of range"},
		{[]string{"-baseline-threshold", "-1", "-figures", "power"}, "-baseline-threshold -1 is out of range"},
	} {
		_, stderr, code := runMain(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", tc.args, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, stderr, tc.want)
		}
	}
}

// TestControlFigureRuns drives the control figure end to end through the CLI
// at quick fidelity and checks the storm scenario's headline columns reach
// the table.
func TestControlFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	stdout, stderr, code := runMain(t, "-quick", "-figures", "control")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Closed-loop control study", "uncapped", "capped+shed", "hedge=500us", "lag=25ms", "goodput"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("control figure output missing %q:\n%s", want, stdout)
		}
	}
}

func TestBadServeAddrExits(t *testing.T) {
	_, stderr, code := runMain(t, "-serve", "not/an/addr", "-figures", "power")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "umbench:") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestGraphFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	stdout, stderr, code := runMain(t, "-quick", "-figures", "graph")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Service-graph study", "colocated", "spread", "random", "remote"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("graph figure output missing %q:\n%s", want, stdout)
		}
	}
}
