package umanycore

import (
	"testing"
)

func TestPresets(t *testing.T) {
	u := UManycore()
	if u.Cores != 1024 || u.Name != "uManycore" {
		t.Fatalf("UManycore preset = %+v", u)
	}
	if s := ScaleOut(); s.Cores != 1024 || s.Name != "ScaleOut" {
		t.Fatalf("ScaleOut preset = %+v", s)
	}
	if sc := ServerClass(40); sc.Cores != 40 {
		t.Fatalf("ServerClass preset = %+v", sc)
	}
	if topo := UManycoreTopology(32, 2, 16); topo.Cores != 1024 || topo.Domains != 32 {
		t.Fatalf("topology preset = %+v", topo)
	}
}

func TestQuickstartFlow(t *testing.T) {
	apps := SocialNetworkApps()
	if len(apps) != 8 {
		t.Fatalf("apps = %d", len(apps))
	}
	res := Run(UManycore(), RunConfig{
		App:      apps[len(apps)-1], // UrlShort: light and fast to simulate
		RPS:      2000,
		Duration: 100 * Millisecond,
		Warmup:   20 * Millisecond,
		Drain:    400 * Millisecond,
		Seed:     1,
	})
	if res.Completed == 0 || res.Latency.P99 <= 0 {
		t.Fatalf("quickstart result = %+v", res.Latency)
	}
}

func TestMixedRunFlow(t *testing.T) {
	apps := SocialNetworkApps()
	res := Run(UManycore(), RunConfig{
		App:      apps[0],
		Mix:      SocialNetworkMix(),
		RPS:      3000,
		Duration: 100 * Millisecond,
		Warmup:   20 * Millisecond,
		Drain:    600 * Millisecond,
		Seed:     2,
	})
	if len(res.PerRoot) != 8 {
		t.Fatalf("per-root types = %d", len(res.PerRoot))
	}
}

func TestSyntheticAppAPI(t *testing.T) {
	app, err := SyntheticApp("bimodal", 50, 4)
	if err != nil || app == nil {
		t.Fatal(err)
	}
	if _, err := SyntheticApp("weird", 50, 4); err == nil {
		t.Fatal("bad dist accepted")
	}
}

func TestFleetAPI(t *testing.T) {
	fc := DefaultFleet(UManycore())
	if fc.Servers != 10 {
		t.Fatalf("fleet = %+v", fc)
	}
	fc.Servers = 2
	res := RunFleet(fc, SocialNetworkApps()[len(SocialNetworkApps())-1], 2000,
		RunConfig{Duration: 80 * Millisecond, Warmup: 20 * Millisecond, Drain: 300 * Millisecond}, 3)
	if res.Completed == 0 {
		t.Fatal("fleet completed nothing")
	}
}

func TestPowerAreaAPI(t *testing.T) {
	if p := PackagePower("uManycore"); p < 300 || p > 550 {
		t.Fatalf("uManycore power = %v W", p)
	}
	if a := PackageArea("uManycore"); a < 500 || a > 600 {
		t.Fatalf("uManycore area = %v mm²", a)
	}
	ratio := PackagePower("ServerClass-128") / PackagePower("uManycore")
	if ratio < 2.9 || ratio > 3.5 {
		t.Fatalf("iso-area power ratio = %v, want ≈3.2", ratio)
	}
	if PackagePower("nope") != 0 || PackageArea("nope") != 0 {
		t.Fatal("unknown package should be 0")
	}
	for _, name := range []string{"ScaleOut", "ServerClass-40"} {
		if PackagePower(name) <= 0 || PackageArea(name) <= 0 {
			t.Fatalf("%s power/area missing", name)
		}
	}
}

func TestQoSAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	app := SocialNetworkApps()[len(SocialNetworkApps())-1] // UrlShort
	avg := ContentionFreeAvg(UManycore(), app, 5)
	if avg <= 0 {
		t.Fatal("no contention-free average")
	}
	thr := MaxQoSThroughput(UManycore(), app, 5, 1000, 200000, 5)
	if thr < 1000 {
		t.Fatalf("QoS throughput = %v", thr)
	}
}

func TestFigureAPISmoke(t *testing.T) {
	o := DefaultExperimentOptions()
	o.Duration = 60 * Millisecond
	o.Warmup = 10 * Millisecond
	o.Drain = 300 * Millisecond
	if len(Fig1(o)) != 8 {
		t.Fatal("Fig1")
	}
	if len(Fig2(o)) == 0 || len(Fig4(o)) == 0 || len(Fig5(o)) == 0 {
		t.Fatal("trace CDFs")
	}
	if len(Fig8(o)) != 2 || len(Fig9(o)) != 8 {
		t.Fatal("footprint/cache figures")
	}
	if Version == "" {
		t.Fatal("version")
	}
}
