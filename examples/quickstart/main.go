// Quickstart: simulate the three processors of the paper serving the same
// microservice application at increasing load and watch μManycore's tail
// stay flat while the conventional ServerClass multicore collapses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"umanycore"
)

func main() {
	apps := umanycore.SocialNetworkApps()
	var homeTimeline *umanycore.App
	for _, a := range apps {
		if a.Name == "HomeT" {
			homeTimeline = a
		}
	}

	configs := []umanycore.Config{
		umanycore.ServerClass(40), // iso-power conventional multicore
		umanycore.ScaleOut(),      // 1024 small cores, conventional organization
		umanycore.UManycore(),     // the paper's design
	}

	fmt.Println("Mixed SocialNetwork load; HomeTimeline request latency [us]:")
	fmt.Printf("%-15s %10s %12s %12s %8s\n", "architecture", "RPS", "mean", "p99", "util")
	for _, cfg := range configs {
		for _, rps := range []float64{5000, 10000, 15000} {
			res := umanycore.Run(cfg, umanycore.RunConfig{
				App:      homeTimeline,
				Mix:      umanycore.SocialNetworkMix(),
				RPS:      rps,
				Duration: 300 * umanycore.Millisecond,
				Warmup:   60 * umanycore.Millisecond,
				Seed:     1,
			})
			sum := res.PerRoot[homeTimeline.Root]
			fmt.Printf("%-15s %10.0f %12.1f %12.1f %8.3f\n",
				cfg.Name, rps, sum.Mean, sum.P99, res.Utilization)
		}
	}

	fmt.Println()
	fmt.Println("Why: the hardware request queue dispatches in ~16 cycles, the hardware")
	fmt.Println("context switch costs 128 cycles instead of thousands, and the leaf-spine")
	fmt.Println("interconnect gives every village redundant low-hop paths — so queueing")
	fmt.Println("never compounds the way it does behind a software scheduler.")
}
