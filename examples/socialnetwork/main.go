// Social-network scenario: a 10-server cluster (the paper's evaluation
// deployment) serving the full request mix, with QoS accounting per request
// type. This is the workload the paper's introduction motivates: bursty,
// short, RPC-chained requests with sub-ms SLOs.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"

	"umanycore"
)

func main() {
	apps := umanycore.SocialNetworkApps()
	catalog := apps[0].Catalog

	fmt.Println("=== Application inventory ===")
	fmt.Printf("%-9s %12s %12s %10s %6s\n", "app", "invocations", "CPU [us]", "CP [us]", "RPCs")
	for _, a := range apps {
		st := a.Stats()
		fmt.Printf("%-9s %12d %12.0f %10.0f %6d\n",
			a.Name, st.Invocations, st.TotalCPUMicros, st.CriticalPathMicros, st.RPCs)
	}

	// A 10-server μManycore cluster under the full mix at 15K RPS/server.
	fmt.Println()
	fmt.Println("=== 10-server uManycore cluster, 150K RPS total, mixed stream ===")
	fleet := umanycore.DefaultFleet(umanycore.UManycore())
	res := umanycore.RunFleet(fleet, apps[0], 150000, umanycore.RunConfig{
		Mix:      umanycore.SocialNetworkMix(),
		Duration: 250 * umanycore.Millisecond,
		Warmup:   50 * umanycore.Millisecond,
	}, 7)
	fmt.Printf("completed %d requests across %d servers (mean util %.3f)\n",
		res.Completed, fleet.Servers, res.MeanUtilization)
	fmt.Printf("cluster-wide latency: mean=%.1fus p99=%.1fus (p99/mean %.2f)\n",
		res.Latency.Mean, res.Latency.P99, res.TailToAvg)

	// Per-type QoS check on one server: is each request type within 5x its
	// contention-free average (the §6.5 criterion)?
	fmt.Println()
	fmt.Println("=== Per-type QoS at 15K RPS/server (limit = 5x contention-free avg) ===")
	cf := umanycore.Run(umanycore.UManycore(), umanycore.RunConfig{
		App: apps[0], Mix: umanycore.SocialNetworkMix(),
		RPS: 100, Duration: 2 * umanycore.Second, Warmup: 200 * umanycore.Millisecond, Seed: 7,
	})
	hot := umanycore.Run(umanycore.UManycore(), umanycore.RunConfig{
		App: apps[0], Mix: umanycore.SocialNetworkMix(),
		RPS: 15000, Duration: 300 * umanycore.Millisecond, Warmup: 60 * umanycore.Millisecond, Seed: 7,
	})
	fmt.Printf("%-9s %14s %12s %10s %6s\n", "app", "cf-avg [us]", "p99 [us]", "limit", "QoS")
	for root := 0; root < len(catalog.Services); root++ {
		base, ok1 := cf.PerRoot[root]
		load, ok2 := hot.PerRoot[root]
		if !ok1 || !ok2 {
			continue
		}
		limit := 5 * base.Mean
		verdict := "OK"
		if load.P99 > limit {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-9s %14.1f %12.1f %10.1f %6s\n",
			catalog.Service(root).Name, base.Mean, load.P99, limit, verdict)
	}
}
