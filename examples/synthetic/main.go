// Synthetic-benchmark scenario (paper §6.7): μs-scale services with
// exponential, lognormal, and bimodal service-time distributions and 2–6
// blocking calls — the regime where scheduling and RPC-stack overheads
// dominate, and where the heavy-tail sensitivity of each design shows.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"

	"umanycore"
)

func main() {
	configs := []umanycore.Config{
		umanycore.ServerClass(40),
		umanycore.ScaleOut(),
		umanycore.UManycore(),
	}

	fmt.Println("P99 latency [us] for synthetic services (mean 10us) at 15K RPS:")
	fmt.Printf("%-13s %8s", "distribution", "blocks")
	for _, cfg := range configs {
		fmt.Printf(" %14s", cfg.Name)
	}
	fmt.Println()

	for _, dist := range []string{"exponential", "lognormal", "bimodal"} {
		for _, blocks := range []int{2, 4, 6} {
			app, err := umanycore.SyntheticApp(dist, 10, blocks)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-13s %8d", dist, blocks)
			for _, cfg := range configs {
				res := umanycore.Run(cfg, umanycore.RunConfig{
					App:      app,
					RPS:      15000,
					Duration: 200 * umanycore.Millisecond,
					Warmup:   40 * umanycore.Millisecond,
					Seed:     3,
				})
				fmt.Printf(" %14.1f", res.Latency.P99)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("More blocking calls mean more context switches per request; the")
	fmt.Println("hardware context-switch engine (128 cycles vs ~2000 in software)")
	fmt.Println("keeps uManycore's tail nearly independent of the blocking count.")
}
