// Topology scenario (paper §6.6): resize μManycore's villages, clusters and
// leaf-spine fabric and observe how request types with different call
// behaviour prefer different shapes — leaf services like bigger villages,
// call-heavy services like many small ones.
//
//	go run ./examples/topology
package main

import (
	"fmt"

	"umanycore"
)

func main() {
	apps := umanycore.SocialNetworkApps()
	catalog := apps[0].Catalog

	shapes := []struct {
		name               string
		coresPerVillage    int
		villagesPerCluster int
		clusters           int
	}{
		{"8x4x32 (default)", 8, 4, 32},
		{"32x1x32", 32, 1, 32},
		{"32x2x16", 32, 2, 16},
		{"32x4x8", 32, 4, 8},
	}

	type key struct{ shape, app string }
	tails := map[key]float64{}
	for _, sh := range shapes {
		cfg := umanycore.UManycoreTopology(sh.coresPerVillage, sh.villagesPerCluster, sh.clusters)
		res := umanycore.Run(cfg, umanycore.RunConfig{
			App: apps[0], Mix: umanycore.SocialNetworkMix(),
			RPS: 15000, Duration: 300 * umanycore.Millisecond,
			Warmup: 60 * umanycore.Millisecond, Seed: 11,
		})
		for root, sum := range res.PerRoot {
			tails[key{sh.name, catalog.Service(root).Name}] = sum.P99
		}
	}

	fmt.Println("P99 latency [us] per uManycore topology (cores/village x villages/cluster x clusters):")
	fmt.Printf("%-9s", "app")
	for _, sh := range shapes {
		fmt.Printf(" %18s", sh.name)
	}
	fmt.Println()
	for _, a := range apps {
		fmt.Printf("%-9s", a.Name)
		for _, sh := range shapes {
			fmt.Printf(" %18.1f", tails[key{sh.name, a.Name}])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("The paper finds all shapes within ~15% overall, with leaf services")
	fmt.Println("(UrlShort) preferring larger villages and call-heavy ones (HomeT,")
	fmt.Println("SGraph) preferring many small villages; the default 8x4x32 is the")
	fmt.Println("best overall compromise.")
}
