// Snapshot scenario (paper §3.5 / §4.1): service instances boot from
// read-mostly snapshots kept in the per-cluster memory-pool SRAM chiplet,
// cutting instance creation from >300ms to <10ms. This example provisions a
// pool, boots instances of every SocialNetwork service cold and warm, and
// shows the eviction behaviour when the pool overflows.
//
//	go run ./examples/snapshots
package main

import (
	"fmt"

	"umanycore"
	"umanycore/internal/memsim"
	"umanycore/internal/sim"
)

func main() {
	catalog := umanycore.SocialNetworkApps()[0].Catalog
	pool := memsim.NewPool(memsim.DefaultPoolConfig())

	fmt.Println("=== Cold boots (no snapshots resident) ===")
	for _, svc := range catalog.Services {
		done := pool.BootInstance(0, svc.ID)
		fmt.Printf("%-9s boot: %8.1f ms\n", svc.Name, done.Millis())
	}

	fmt.Println()
	fmt.Println("=== Storing snapshots in the memory pool ===")
	var total int
	for _, svc := range catalog.Services {
		pool.Store(memsim.Snapshot{ServiceID: svc.ID, SizeBytes: svc.SnapshotBytes})
		total += svc.SnapshotBytes
	}
	fmt.Printf("stored %d snapshots, %d MB of %d MB pool\n",
		len(catalog.Services), total>>20, memsim.DefaultPoolConfig().CapacityBytes>>20)

	fmt.Println()
	fmt.Println("=== Warm boots (snapshot fetch + residual init) ===")
	for _, svc := range catalog.Services {
		done := pool.BootInstance(0, svc.ID)
		speedup := float64(memsim.ColdBootTime) / float64(done)
		fmt.Printf("%-9s boot: %8.2f ms  (%.0fx faster than cold)\n",
			svc.Name, done.Millis(), speedup)
	}

	fmt.Println()
	fmt.Println("=== Pool pressure: a tiny pool evicts LRU snapshots ===")
	small := memsim.NewPool(memsim.PoolConfig{
		CapacityBytes: 40 << 20,
		ReadLatency:   50 * sim.Nanosecond,
		PsPerByte:     10,
	})
	for _, svc := range catalog.Services {
		small.Store(memsim.Snapshot{ServiceID: svc.ID, SizeBytes: svc.SnapshotBytes})
	}
	resident := 0
	for _, svc := range catalog.Services {
		if small.Contains(svc.ID) {
			resident++
		}
	}
	fmt.Printf("40MB pool keeps %d of %d snapshots (%d MB used); the rest cold-boot\n",
		resident, len(catalog.Services), small.Used()>>20)

	fmt.Println()
	fmt.Println("Boot latency feeds instance scale-out: when a village fills up,")
	fmt.Println("uManycore spins a new instance in another village from its snapshot")
	fmt.Println("in milliseconds instead of hundreds of milliseconds (paper §3.5).")
}
