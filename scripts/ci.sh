#!/usr/bin/env sh
# Repository gate: vet, build, race-clean tests, and a benchmark smoke run.
# Usage: scripts/ci.sh [quick]
#   quick  skips the race detector pass (slow on small machines).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [ "${1:-}" = "quick" ]; then
    echo "== go test (short) =="
    go test -short ./...
else
    echo "== go test =="
    go test ./...
    echo "== go test -race =="
    # Single-digit-core CI hosts run the heavy packages close to the default
    # 10m per-package budget under the race detector; give them headroom.
    go test -race -timeout 30m ./...
fi

# The observability merge/stitch path, the sweep runner, the cell cache, the
# streaming-telemetry layer, the PDES fabric, and the coupled fleet carry
# the repo's determinism/race contracts; race-check them on every run,
# quick included. The fleet package includes the cross-server trace-stitching
# tests (TestFleetStitchedTracing, TestStitchedObsShardWorkerDeterminism),
# which exercise obs.Merge against the concurrent worker pool.
echo "== go test -race (obs + sweep + sweepcache + telemetry + pdes + fleet + control + whatif) =="
go test -race -short ./internal/obs/... ./internal/sweep/... ./internal/sweepcache/... ./internal/telemetry/... ./internal/pdes/... ./internal/fleet/... ./internal/control/... ./internal/whatif/... ./internal/svcgraph/...

# Cache gate: a cold run must fill the cache, a warm run must reuse it, a
# verify run must recompute without a single byte of drift — and all three
# must emit byte-identical figure JSON. This is the end-to-end version of the
# determinism battery, through the real CLI.
echo "== sweep cache cold/warm/verify =="
cachedir=$(mktemp -d)
trap 'rm -rf "$cachedir"' EXIT
go build -o "$cachedir/umbench" ./cmd/umbench
"$cachedir/umbench" -quick -figures lb -json "$cachedir/cold.json" -cache "$cachedir/cells" >/dev/null
"$cachedir/umbench" -quick -figures lb -json "$cachedir/warm.json" -cache "$cachedir/cells" >/dev/null
"$cachedir/umbench" -quick -figures lb -json "$cachedir/verify.json" -cache "$cachedir/cells" -cache-verify >/dev/null
cmp "$cachedir/cold.json" "$cachedir/warm.json"
cmp "$cachedir/cold.json" "$cachedir/verify.json"
echo "cache cold/warm/verify byte-identical"

# Shard-worker gate: the coupled fleet must emit byte-identical JSON and tail
# exemplars whether its per-server engines advance on 1 shard worker or 4 —
# the end-to-end version of the PDES determinism contract, through the real
# CLI. wall_seconds is the one wall-clock field of the JSON output; normalize
# it before comparing (everything else is virtual-time deterministic).
echo "== fleet 1-vs-4 shard workers =="
go build -o "$cachedir/umprof" ./cmd/umprof
"$cachedir/umprof" -app Text -rps 24000 -duration 40ms -warmup 10ms \
    -servers 6 -lb p2c -skew 1,1,1,2,1,3 -shard-workers 1 -json -fabric \
    -exemplars "$cachedir/ex1.json" \
    | sed -E 's/"wall_seconds":[0-9.eE+-]+/"wall_seconds":0/' >"$cachedir/shard1.json"
"$cachedir/umprof" -app Text -rps 24000 -duration 40ms -warmup 10ms \
    -servers 6 -lb p2c -skew 1,1,1,2,1,3 -shard-workers 4 -json -fabric \
    -exemplars "$cachedir/ex4.json" \
    | sed -E 's/"wall_seconds":[0-9.eE+-]+/"wall_seconds":0/' >"$cachedir/shard4.json"
cmp "$cachedir/shard1.json" "$cachedir/shard4.json"
cmp "$cachedir/ex1.json" "$cachedir/ex4.json"
echo "shard workers 1 vs 4 byte-identical (json + exemplars)"

# Control gate: the closed-loop front end (retry with capped backoff+jitter,
# tail hedging) routes every decision through coupling messages and its own
# derived RNG stream, so the controlled fleet's JSON — client-level control
# accounting included — must be byte-identical for the single-engine
# reference and a 4-worker PDES. Same wall_seconds normalization as above.
echo "== control loop -1-vs-4 shard workers =="
"$cachedir/umprof" -app Text -rps 16000 -duration 40ms -warmup 10ms \
    -servers 2 -lb rr -skew 1,3 -retries 2 -hedge 1ms -shard-workers -1 -json \
    | sed -E 's/"wall_seconds":[0-9.eE+-]+/"wall_seconds":0/' >"$cachedir/ctl-ref.json"
"$cachedir/umprof" -app Text -rps 16000 -duration 40ms -warmup 10ms \
    -servers 2 -lb rr -skew 1,3 -retries 2 -hedge 1ms -shard-workers 4 -json \
    | sed -E 's/"wall_seconds":[0-9.eE+-]+/"wall_seconds":0/' >"$cachedir/ctl-4.json"
cmp "$cachedir/ctl-ref.json" "$cachedir/ctl-4.json"
grep -q '"control":{"submitted":' "$cachedir/ctl-4.json"
echo "control loop -1 vs 4 byte-identical (json incl. control accounting)"

# What-if gate: the causal-profiling grid (traced paired-seed cells reduced
# through the cell codec) must also be byte-identical across shard-worker
# counts — and its JSON carries no wall-clock fields, so no normalization.
echo "== whatif 1-vs-4 shard workers =="
"$cachedir/umprof" -whatif -app Text -rps 16000 -duration 40ms -warmup 10ms \
    -servers 4 -lb p2c -skew 1,1,2,1 -shard-workers 1 \
    -whatif-stages sched,net -whatif-factors 0.5,0 -json >"$cachedir/wi1.json"
"$cachedir/umprof" -whatif -app Text -rps 16000 -duration 40ms -warmup 10ms \
    -servers 4 -lb p2c -skew 1,1,2,1 -shard-workers 4 \
    -whatif-stages sched,net -whatif-factors 0.5,0 -json >"$cachedir/wi4.json"
cmp "$cachedir/wi1.json" "$cachedir/wi4.json"
echo "whatif shard workers 1 vs 4 byte-identical"

# Trace round-trip gate: umtrace -csv must feed umprof -trace losslessly —
# every record parsed, replayed through the coupled fleet, and the JSON
# (trace accounting included) byte-identical for the single-engine reference
# and 1/4 shard workers. This is the external-trace loop closed through the
# real CLIs.
echo "== trace round trip (umtrace -csv -> umprof -trace) =="
go build -o "$cachedir/umtrace" ./cmd/umtrace
"$cachedir/umtrace" -requests 1500 -csv >"$cachedir/trace.csv"
for w in -1 1 4; do
    "$cachedir/umprof" -trace "$cachedir/trace.csv" -app CPost -rps 40000 \
        -duration 40ms -warmup 10ms -servers 4 -lb rr -shard-workers "$w" -json \
        | sed -E 's/"wall_seconds":[0-9.eE+-]+/"wall_seconds":0/' >"$cachedir/replay$w.json"
done
cmp "$cachedir/replay-1.json" "$cachedir/replay1.json"
cmp "$cachedir/replay-1.json" "$cachedir/replay4.json"
grep -q '"trace":{"records":1500,' "$cachedir/replay4.json"
echo "trace replay -1 vs 1 vs 4 byte-identical (1500 records round-tripped)"

# Fail-fast gate: malformed traces and invalid graph figures must exit 2
# with a diagnostic, before any simulation runs.
echo "== trace/graph validation exits =="
printf 'arrival_us,service,duration_us,cpu_util,rpcs\n1,a,-2,0.5,3\n' >"$cachedir/bad.csv"
if "$cachedir/umprof" -trace "$cachedir/bad.csv" 2>"$cachedir/bad.err"; then
    echo "umprof accepted a malformed trace" >&2; exit 1
fi
grep -q 'trace line 2' "$cachedir/bad.err"
if "$cachedir/umprof" -trace "$cachedir/trace.csv" -whatif 2>"$cachedir/conflict.err"; then
    echo "umprof accepted -trace with -whatif" >&2; exit 1
fi
grep -q 'not supported with -whatif' "$cachedir/conflict.err"
if "$cachedir/umbench" -figures graph,bogus 2>"$cachedir/figs.err"; then
    echo "umbench accepted an unknown figure" >&2; exit 1
fi
grep -q 'unknown figure' "$cachedir/figs.err"
echo "validation paths exit 2 with diagnostics"

# Graph figure smoke: the service-graph study runs end to end in quick mode
# and shows the placement contrast (colocated ships nothing remotely).
echo "== graph figure smoke =="
"$cachedir/umbench" -quick -figures graph -cache "$cachedir/cells" >"$cachedir/graph.out"
grep -q 'Service-graph study' "$cachedir/graph.out"
grep -q 'colocated' "$cachedir/graph.out"
grep -q 'spread' "$cachedir/graph.out"
echo "graph figure OK"

# Baseline gate (warn-only): diff the lb figure against the checked-in
# snapshot and record a trajectory point. Deterministic sims mean any drift
# here is a real model change; warn-only keeps CI green while a deliberate
# change circulates — regenerating BENCH_lb_baseline.json is the fix.
echo "== bench baseline diff (warn-only) =="
"$cachedir/umbench" -quick -figures lb -cache "$cachedir/cells" \
    -baseline BENCH_lb_baseline.json -baseline-warn >/dev/null

echo "== bench smoke (allocation + sweep + telemetry benchmarks, 1 iteration) =="
go test -run xxx -bench 'BenchmarkEngine|BenchmarkMachineRun' -benchtime 1x \
    -benchmem ./internal/sim/ ./internal/machine/
go test -run xxx -bench 'BenchmarkEndToEndGridWorkers' -benchtime 1x .

echo "CI OK"
