module umanycore

go 1.22
