package umanycore_test

import (
	"fmt"

	"umanycore"
)

// ExampleRun simulates the default μManycore serving one request type and
// prints whether its tail met a 2ms SLO. Latencies are deterministic for a
// fixed seed.
func ExampleRun() {
	apps := umanycore.SocialNetworkApps()
	res := umanycore.Run(umanycore.UManycore(), umanycore.RunConfig{
		App:      apps[len(apps)-1], // UrlShort
		RPS:      2000,
		Duration: 100 * umanycore.Millisecond,
		Warmup:   20 * umanycore.Millisecond,
		Seed:     1,
	})
	fmt.Println("met 2ms SLO:", res.Latency.P99 < 2000)
	// Output: met 2ms SLO: true
}

// ExampleRun_mixed drives the full SocialNetwork request mix and reads the
// per-type latency summaries.
func ExampleRun_mixed() {
	apps := umanycore.SocialNetworkApps()
	res := umanycore.Run(umanycore.UManycore(), umanycore.RunConfig{
		App:      apps[0],
		Mix:      umanycore.SocialNetworkMix(),
		RPS:      5000,
		Duration: 100 * umanycore.Millisecond,
		Warmup:   20 * umanycore.Millisecond,
		Seed:     1,
	})
	fmt.Println("request types measured:", len(res.PerRoot))
	// Output: request types measured: 8
}

// ExampleServerClass shows the iso-power baseline collapsing under a load
// the 1024-core μManycore shrugs off.
func ExampleServerClass() {
	apps := umanycore.SocialNetworkApps()
	run := func(cfg umanycore.Config) float64 {
		res := umanycore.Run(cfg, umanycore.RunConfig{
			App: apps[0], Mix: umanycore.SocialNetworkMix(),
			RPS: 15000, Duration: 150 * umanycore.Millisecond,
			Warmup: 30 * umanycore.Millisecond, Seed: 3,
		})
		return res.Latency.P99
	}
	sc := run(umanycore.ServerClass(40))
	umc := run(umanycore.UManycore())
	fmt.Println("uManycore wins at 15K RPS:", sc > 2*umc)
	// Output: uManycore wins at 15K RPS: true
}

// ExamplePackagePower reads the CACTI/McPAT stand-in's §6.8 numbers.
func ExamplePackagePower() {
	iso := umanycore.PackagePower("ServerClass-128") / umanycore.PackagePower("uManycore")
	fmt.Printf("iso-area ServerClass draws %.1fx the power\n", iso)
	// Output: iso-area ServerClass draws 3.0x the power
}

// ExampleSyntheticApp builds a §6.7 synthetic benchmark.
func ExampleSyntheticApp() {
	app, err := umanycore.SyntheticApp("bimodal", 10, 4)
	if err != nil {
		panic(err)
	}
	st := app.Stats()
	fmt.Println("blocking calls:", st.RPCs)
	// Output: blocking calls: 4
}
